// Package doe implements the Plackett–Burman screening designs that the
// paper's related work discusses as the alternative design-of-experiments
// methodology (Yi et al., HPCA 2005, ref [20]): n parameter settings that
// allow estimating n main effects in a little over n simulations, with a
// foldover to keep main effects unconfounded with two-factor
// interactions. The paper's §5 criticism — that these designs cannot
// quantify interactions — is directly testable against the linear-model
// significance estimates and the regression-tree splits.
package doe

import (
	"errors"
	"math"
	"sort"

	"predperf/internal/core"
	"predperf/internal/design"
)

// pb12Generator is the standard Plackett–Burman generator row for a
// 12-run design (11 two-level columns).
var pb12Generator = []int{+1, +1, -1, +1, +1, +1, -1, -1, -1, +1, -1}

// PlackettBurman12 returns the 12×11 ±1 design matrix: eleven cyclic
// shifts of the generator row plus a final all-minus row.
func PlackettBurman12() [][]int {
	n := len(pb12Generator)
	m := make([][]int, n+1)
	for r := 0; r < n; r++ {
		row := make([]int, n)
		for c := 0; c < n; c++ {
			row[c] = pb12Generator[(c+n-r)%n]
		}
		m[r] = row
	}
	last := make([]int, n)
	for c := range last {
		last[c] = -1
	}
	m[n] = last
	return m
}

// Foldover appends the sign-reversed mirror of every run, doubling the
// design. In the folded design, main effects are clear of two-factor
// interactions.
func Foldover(m [][]int) [][]int {
	out := make([][]int, 0, 2*len(m))
	out = append(out, m...)
	for _, row := range m {
		mir := make([]int, len(row))
		for i, v := range row {
			mir[i] = -v
		}
		out = append(out, mir)
	}
	return out
}

// Effect is one parameter's estimated main effect from the screening
// design.
type Effect struct {
	Param  int
	Name   string
	Effect float64 // mean(response | +1) − mean(response | −1)
}

// Screening is the result of a Plackett–Burman screening experiment.
type Screening struct {
	Runs    int
	Effects []Effect // sorted by |Effect| descending
}

// Screen runs a (folded-over) Plackett–Burman experiment on the design
// space: each ±1 level maps to the parameter's High/Low endpoint, the
// evaluator supplies the response, and main effects are estimated by
// contrast. Spaces with more than 11 parameters are not supported by the
// 12-run base design.
func Screen(ev core.Evaluator, space *design.Space, foldover bool) (*Screening, error) {
	k := space.N()
	if k > 11 {
		return nil, errors.New("doe: more than 11 factors needs a larger base design")
	}
	m := PlackettBurman12()
	if foldover {
		m = Foldover(m)
	}
	responses := make([]float64, len(m))
	for r, row := range m {
		pt := make(design.Point, k)
		for c := 0; c < k; c++ {
			if row[c] > 0 {
				pt[c] = 1 // the parameter's High (favorable) endpoint
			} else {
				pt[c] = 0 // the Low (hostile) endpoint
			}
		}
		responses[r] = ev.Eval(space.Decode(pt, 2))
	}
	sc := &Screening{Runs: len(m)}
	for c := 0; c < k; c++ {
		var plus, minus float64
		var np, nm int
		for r, row := range m {
			if row[c] > 0 {
				plus += responses[r]
				np++
			} else {
				minus += responses[r]
				nm++
			}
		}
		sc.Effects = append(sc.Effects, Effect{
			Param:  c,
			Name:   space.Params[c].Name,
			Effect: plus/float64(np) - minus/float64(nm),
		})
	}
	sort.Slice(sc.Effects, func(i, j int) bool {
		return math.Abs(sc.Effects[i].Effect) > math.Abs(sc.Effects[j].Effect)
	})
	return sc, nil
}
