package mlp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLinearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 150; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, 1+2*x[0]-x[1])
	}
	n, err := Fit(xs, ys, Options{Epochs: 3000})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		want := 1 + 2*x[0] - x[1]
		if e := math.Abs(n.Predict(x) - want); e > worst {
			worst = e
		}
	}
	if worst > 0.15 {
		t.Fatalf("worst error %v on linear target", worst)
	}
}

func TestFitNonlinearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(x []float64) float64 { return math.Sin(4*x[0]) + x[1]*x[1] }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	n, err := Fit(xs, ys, Options{Hidden: 24, Epochs: 4000})
	if err != nil {
		t.Fatal(err)
	}
	var sse, tot float64
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d := n.Predict(x) - f(x)
		sse += d * d
		tot += f(x) * f(x)
	}
	if sse/tot > 0.05 {
		t.Fatalf("relative error %v on smooth nonlinear target", sse/tot)
	}
}

func TestConstantTarget(t *testing.T) {
	var xs [][]float64
	var ys []float64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		xs = append(xs, []float64{rng.Float64(), rng.Float64()})
		ys = append(ys, 5.5)
	}
	n, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Predict([]float64{0.5, 0.5}); math.Abs(got-5.5) > 0.2 {
		t.Fatalf("constant prediction %v", got)
	}
}

func TestEmptyInput(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("expected error for empty sample")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, x[0]+x[1])
	}
	a, err := Fit(xs, ys, Options{Seed: 9, Epochs: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(xs, ys, Options{Seed: 9, Epochs: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}

// Property: predictions are finite for any input in the unit cube.
func TestQuickPredictionsFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, math.Exp(x[0])-x[1]*x[2])
	}
	n, err := Fit(xs, ys, Options{Epochs: 800})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		x := []float64{frac(a), frac(b), frac(c)}
		v := n.Predict(x)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func frac(v float64) float64 {
	v = math.Abs(v)
	return v - math.Floor(v)
}
