// Package mlp implements a small feed-forward neural network (one tanh
// hidden layer trained by full-batch backpropagation with momentum and
// early stopping). The paper's related work compares against artificial
// neural networks (Ipek et al., ASPLOS 2006) and its conclusion invites
// the study of other modeling techniques; this package provides that
// comparison point for the model-family experiment.
package mlp

import (
	"errors"
	"math"
	"math/rand"
)

// Options configures training. Zero values take defaults.
type Options struct {
	Hidden   int     // hidden units (default 16)
	Epochs   int     // training epochs (default 2000)
	LR       float64 // learning rate (default 0.02)
	Momentum float64 // gradient momentum (default 0.9)
	ValFrac  float64 // fraction held out for early stopping (default 0.2)
	Patience int     // epochs without val improvement before stopping (default 200)
	Seed     int64
}

func (o Options) withDefaults() Options {
	if o.Hidden <= 0 {
		o.Hidden = 16
	}
	if o.Epochs <= 0 {
		o.Epochs = 2000
	}
	if o.LR <= 0 {
		o.LR = 0.02
	}
	if o.Momentum <= 0 {
		o.Momentum = 0.9
	}
	if o.ValFrac <= 0 || o.ValFrac >= 0.5 {
		o.ValFrac = 0.2
	}
	if o.Patience <= 0 {
		o.Patience = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Network is a trained one-hidden-layer regression network. The target
// is internally standardized; Predict returns values in the original
// scale.
type Network struct {
	nIn, nHid   int
	w1          []float64 // nHid×nIn
	b1          []float64
	w2          []float64 // nHid
	b2          float64
	yMean, yStd float64
}

// Predict evaluates the network.
func (n *Network) Predict(x []float64) float64 {
	var out float64
	for h := 0; h < n.nHid; h++ {
		var a float64
		row := n.w1[h*n.nIn : (h+1)*n.nIn]
		for i, xi := range x {
			a += row[i] * xi
		}
		out += n.w2[h] * math.Tanh(a+n.b1[h])
	}
	return (out+n.b2)*n.yStd + n.yMean
}

// Fit trains a network on (x, y) with early stopping on a held-out
// validation split.
func Fit(x [][]float64, y []float64, opt Options) (*Network, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("mlp: sample is empty or mismatched")
	}
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	nIn := len(x[0])
	nHid := opt.Hidden

	// Standardize targets.
	var mean, std float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(y)))
	if std < 1e-12 {
		std = 1
	}
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - mean) / std
	}

	// Split train/validation.
	perm := rng.Perm(len(x))
	nVal := int(opt.ValFrac * float64(len(x)))
	if nVal < 1 && len(x) > 4 {
		nVal = 1
	}
	valIdx, trIdx := perm[:nVal], perm[nVal:]
	if len(trIdx) == 0 {
		trIdx, valIdx = perm, nil
	}

	net := &Network{
		nIn: nIn, nHid: nHid,
		w1: make([]float64, nHid*nIn), b1: make([]float64, nHid),
		w2:    make([]float64, nHid),
		yMean: mean, yStd: std,
	}
	scale := 1 / math.Sqrt(float64(nIn))
	for i := range net.w1 {
		net.w1[i] = rng.NormFloat64() * scale
	}
	for i := range net.w2 {
		net.w2[i] = rng.NormFloat64() / math.Sqrt(float64(nHid))
	}

	// Momentum buffers.
	vW1 := make([]float64, len(net.w1))
	vB1 := make([]float64, len(net.b1))
	vW2 := make([]float64, len(net.w2))
	vB2 := 0.0
	// Gradient accumulators.
	gW1 := make([]float64, len(net.w1))
	gB1 := make([]float64, len(net.b1))
	gW2 := make([]float64, len(net.w2))

	hid := make([]float64, nHid)
	bestVal := math.Inf(1)
	var bestW1, bestB1, bestW2 []float64
	var bestB2 float64
	snapshot := func() {
		bestW1 = append(bestW1[:0], net.w1...)
		bestB1 = append(bestB1[:0], net.b1...)
		bestW2 = append(bestW2[:0], net.w2...)
		bestB2 = net.b2
	}
	snapshot()
	stale := 0

	valErr := func() float64 {
		if len(valIdx) == 0 {
			return math.NaN()
		}
		var s float64
		for _, i := range valIdx {
			d := n2predict(net, x[i]) - ys[i]
			s += d * d
		}
		return s / float64(len(valIdx))
	}

	for epoch := 0; epoch < opt.Epochs; epoch++ {
		for i := range gW1 {
			gW1[i] = 0
		}
		for i := range gB1 {
			gB1[i] = 0
		}
		for i := range gW2 {
			gW2[i] = 0
		}
		gB2 := 0.0
		for _, i := range trIdx {
			xi := x[i]
			// Forward.
			var out float64
			for h := 0; h < nHid; h++ {
				var a float64
				row := net.w1[h*nIn : (h+1)*nIn]
				for k, v := range xi {
					a += row[k] * v
				}
				hid[h] = math.Tanh(a + net.b1[h])
				out += net.w2[h] * hid[h]
			}
			out += net.b2
			// Backward (squared error).
			e := out - ys[i]
			gB2 += e
			for h := 0; h < nHid; h++ {
				gW2[h] += e * hid[h]
				dh := e * net.w2[h] * (1 - hid[h]*hid[h])
				gB1[h] += dh
				row := gW1[h*nIn : (h+1)*nIn]
				for k, v := range xi {
					row[k] += dh * v
				}
			}
		}
		lr := opt.LR / float64(len(trIdx))
		for i := range net.w1 {
			vW1[i] = opt.Momentum*vW1[i] - lr*gW1[i]
			net.w1[i] += vW1[i]
		}
		for i := range net.b1 {
			vB1[i] = opt.Momentum*vB1[i] - lr*gB1[i]
			net.b1[i] += vB1[i]
		}
		for i := range net.w2 {
			vW2[i] = opt.Momentum*vW2[i] - lr*gW2[i]
			net.w2[i] += vW2[i]
		}
		vB2 = opt.Momentum*vB2 - lr*gB2
		net.b2 += vB2

		if len(valIdx) > 0 && epoch%10 == 9 {
			if v := valErr(); v < bestVal {
				bestVal = v
				snapshot()
				stale = 0
			} else {
				stale += 10
				if stale >= opt.Patience {
					break
				}
			}
		}
	}
	if len(valIdx) > 0 {
		copy(net.w1, bestW1)
		copy(net.b1, bestB1)
		copy(net.w2, bestW2)
		net.b2 = bestB2
	}
	return net, nil
}

// n2predict evaluates in standardized space (training-internal).
func n2predict(n *Network, x []float64) float64 {
	var out float64
	for h := 0; h < n.nHid; h++ {
		var a float64
		row := n.w1[h*n.nIn : (h+1)*n.nIn]
		for i, xi := range x {
			a += row[i] * xi
		}
		out += n.w2[h] * math.Tanh(a+n.b1[h])
	}
	return out + n.b2
}
