package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 || Workers(1) != 1 {
		t.Fatal("positive counts must pass through")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-2) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive counts must default to GOMAXPROCS")
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 17} {
		const n = 100
		var hits [n]atomic.Int32
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForHandlesEdgeCases(t *testing.T) {
	For(4, 0, func(i int) { t.Fatal("called for empty range") })
	calls := 0
	For(8, 1, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1 ran %d times", calls)
	}
}

func TestMapOrdersResults(t *testing.T) {
	in := make([]int, 64)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{1, 3, 8} {
		out := Map(workers, in, func(i, v int) int { return v * v })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrReturnsFirstErrorByIndex(t *testing.T) {
	in := []int{0, 1, 2, 3, 4, 5, 6, 7}
	wantErr := errors.New("boom-3")
	for _, workers := range []int{1, 4} {
		out, err := MapErr(workers, in, func(i, v int) (string, error) {
			if v == 5 {
				return "", errors.New("boom-5")
			}
			if v == 3 {
				return "", wantErr
			}
			return fmt.Sprintf("v%d", v), nil
		})
		if err == nil || err.Error() != "boom-3" {
			t.Fatalf("workers=%d: err = %v, want boom-3 (first by index)", workers, err)
		}
		// Successful slots are still populated (no short-circuit).
		if out[0] != "v0" || out[7] != "v7" {
			t.Fatalf("workers=%d: successful slots lost: %v", workers, out)
		}
	}
}

func TestMapErrNilOnSuccess(t *testing.T) {
	out, err := MapErr(4, []int{1, 2, 3}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[2] != 4 {
		t.Fatalf("out = %v", out)
	}
}
