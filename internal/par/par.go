// Package par is the shared worker-pool used by every parallel stage of
// the model-building pipeline: candidate-LHS discrepancy scoring, design
// point simulation, the (p_min, α) RBF grid search, validation, and the
// experiment fan-out. All helpers write results into fixed slots indexed
// by the input position, so a computation is bit-identical regardless of
// the worker count — parallelism changes wall-clock time, never results.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n > 0 requests exactly n workers
// (1 = serial), and n <= 0 requests one worker per available CPU
// (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n), spread across at most workers
// goroutines. workers <= 1 (or n < 2) runs inline with no goroutines.
// Iterations are claimed dynamically (an atomic cursor), so uneven
// per-item costs still balance; fn must write any output to a slot owned
// by its index. For returns when every iteration has completed.
func For(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every element of in across at most workers
// goroutines and returns the results in input order.
func Map[T, U any](workers int, in []T, fn func(i int, v T) U) []U {
	out := make([]U, len(in))
	For(workers, len(in), func(i int) {
		out[i] = fn(i, in[i])
	})
	return out
}

// MapErr is Map for fallible work: every element is processed (no
// short-circuit, so side effects like cache warming stay deterministic),
// results land in input order, and the returned error is the first
// failure by input position regardless of completion order.
func MapErr[T, U any](workers int, in []T, fn func(i int, v T) (U, error)) ([]U, error) {
	out := make([]U, len(in))
	errs := make([]error, len(in))
	For(workers, len(in), func(i int) {
		out[i], errs[i] = fn(i, in[i])
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
