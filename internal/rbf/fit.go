package rbf

import (
	"math"

	"predperf/internal/mat"
)

// gram holds the precomputed quantities needed to fit any *subset* of a
// candidate basis set by least squares in O(m³) instead of O(p·m²):
// the full Gram matrix G = HᵀH over all candidates, h = Hᵀy, and yᵀy,
// where H is the p×M design matrix of all M candidate bases evaluated at
// the p sample points.
type gram struct {
	p  int
	g  *mat.Matrix // M×M
	hy []float64   // M
	yy float64
}

// newGram evaluates all candidate bases on the sample — one blocked
// design-matrix pass through the same kernel PredictBatch uses — and
// forms the Gram system.
func newGram(bases []Basis, x [][]float64, y []float64) *gram {
	h := DesignMatrix(bases, x)
	gr := &gram{p: len(x), g: h.T().Mul(h), hy: h.T().MulVec(y)}
	for _, v := range y {
		gr.yy += v * v
	}
	return gr
}

// fitSubset solves the least-squares problem restricted to the candidate
// indices in sel, returning the weights and the training SSE. A small
// ridge (escalated on numerical failure) keeps nearly collinear Gaussian
// columns solvable.
func (gr *gram) fitSubset(sel []int) (w []float64, sse float64, ok bool) {
	m := len(sel)
	if m == 0 {
		return nil, gr.yy, true
	}
	sub := mat.New(m, m)
	rhs := make([]float64, m)
	var trace float64
	for a, ia := range sel {
		rhs[a] = gr.hy[ia]
		for b, ib := range sel {
			sub.Set(a, b, gr.g.At(ia, ib))
		}
		trace += gr.g.At(ia, ia)
	}
	lambda := 1e-10 * (1 + trace/float64(m))
	for try := 0; try < 12; try++ {
		reg := sub.Clone()
		for i := 0; i < m; i++ {
			reg.Set(i, i, reg.At(i, i)+lambda)
		}
		ch, err := mat.CholFactor(reg)
		if err != nil {
			lambda *= 100
			continue
		}
		w = ch.Solve(rhs)
		// SSE = yᵀy − 2wᵀh + wᵀGw over the subset.
		sse = gr.yy - 2*mat.Dot(w, rhs) + mat.Dot(w, sub.MulVec(w))
		if sse < 0 {
			sse = 0
		}
		if !math.IsNaN(sse) && !math.IsInf(sse, 0) {
			return w, sse, true
		}
		lambda *= 100
	}
	return nil, 0, false
}

// aiccOf evaluates the model-selection criterion for a subset.
func (gr *gram) aiccOf(sel []int) (aicc, sse float64, w []float64, ok bool) {
	w, sse, ok = gr.fitSubset(sel)
	if !ok {
		return math.Inf(1), 0, nil, false
	}
	return AICc(gr.p, len(sel), sse/float64(gr.p)), sse, w, true
}
