package rbf

import (
	"fmt"
	"math"
	"sync"

	"predperf/internal/mat"
)

// Compiled is a Network flattened into structure-of-arrays form for
// batch evaluation: one contiguous center matrix and one precomputed
// 1/r² matrix (both m×dims, row-major, basis j at [j*dims,(j+1)*dims)),
// plus the weight vector. PredictBatch computes the design matrix
// H (N configs × m centers) in cache-sized tiles with the H·w product
// fused into the pass, replacing N independent walks over []Basis with
// dense, contiguous, allocation-free passes.
//
// ULP policy: every H entry is exp(−Σₖ dₖ²·(1/rₖ²)) accumulated in
// dimension order, and every output is Σⱼ wⱼ·Hⱼ accumulated in basis
// order — exactly the operation sequence of the scalar Basis.Eval /
// Network.Predict pair, so compiled results are bit-identical to the
// scalar path, not merely close. (The scalar path itself moved from
// (d/r)² to d²·(1/r²) when 1/r² hoisting landed; that one-time
// change is the only documented ULP difference, and it applies to
// scalar and compiled evaluation alike.)
type Compiled struct {
	dims    int
	m       int
	centers []float64
	invR2   []float64
	weights []float64
}

// Design-matrix tile sizes. A 64×64 tile touches 64 config rows and 64
// basis rows per pass — with 9 dimensions that is ~9 KB of centers plus
// 9 KB of inverse radii per column panel, resident in L1 while the row
// panel streams through. Correctness never depends on these: each H
// entry is computed independently, so any tiling gives bit-identical
// results (see mat.ForEachBlock).
const (
	blockConfigs = 64
	blockCenters = 64
)

// compileBases flattens a basis slice into the SoA center and 1/r²
// matrices. Bases that already carry precomputed inverse radii reuse
// them; others compute 1/(r·r) here, the same expression Precompute
// caches, so both routes yield identical values.
func compileBases(bases []Basis) (dims int, centers, invR2 []float64) {
	if len(bases) == 0 {
		return 0, nil, nil
	}
	dims = len(bases[0].Center)
	centers = make([]float64, len(bases)*dims)
	invR2 = make([]float64, len(bases)*dims)
	for j := range bases {
		b := &bases[j]
		if len(b.Center) != dims || len(b.Radius) != dims {
			panic(fmt.Sprintf("rbf: basis %d has %d/%d dims, want %d",
				j, len(b.Center), len(b.Radius), dims))
		}
		off := j * dims
		copy(centers[off:off+dims], b.Center)
		if b.invR2 != nil {
			copy(invR2[off:off+dims], b.invR2)
		} else {
			for k, r := range b.Radius {
				invR2[off+k] = 1 / (r * r)
			}
		}
	}
	return dims, centers, invR2
}

// Compile flattens the network into its batch evaluation form. The
// result shares no mutable state with the network and is safe for
// concurrent use.
func (n *Network) Compile() *Compiled {
	dims, centers, invR2 := compileBases(n.Bases)
	w := make([]float64, len(n.Weights))
	copy(w, n.Weights)
	return &Compiled{dims: dims, m: len(n.Bases), centers: centers, invR2: invR2, weights: w}
}

// M returns the number of basis functions.
func (c *Compiled) M() int { return c.m }

// Dims returns the input dimensionality.
func (c *Compiled) Dims() int { return c.dims }

// Predict evaluates the compiled network at one point, bit-identical
// to Network.Predict.
func (c *Compiled) Predict(x []float64) float64 {
	var s float64
	for j := 0; j < c.m; j++ {
		off := j * c.dims
		cen := c.centers[off : off+len(x)]
		inv := c.invR2[off : off+len(x)]
		var e float64
		for k, xk := range x {
			d := xk - cen[k]
			e += d * d * inv[k]
		}
		s += c.weights[j] * math.Exp(-e)
	}
	return s
}

// PredictBatch evaluates the network at every row of xs with one
// blocked pass over the flattened centers. Results are bit-identical
// to calling Predict per row.
func (c *Compiled) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	c.PredictBatchTo(out, xs)
	return out
}

// PredictBatchTo is PredictBatch into a caller-owned destination
// (len(dst) == len(xs)), so callers evaluating disjoint slices of a
// larger batch — e.g. worker-pool chunks — allocate nothing per call.
//
// The H·w product is fused into the blocked design pass: dst[i] is the
// running accumulator, and because ForEachBlock visits each row's
// column blocks in ascending order, the per-row accumulation sequence
// is exactly w₀h₀ + w₁h₁ + … — the scalar Predict order — rather than
// a sum of per-block partials, which would round differently.
func (c *Compiled) PredictBatchTo(dst []float64, xs [][]float64) {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("rbf: PredictBatchTo destination has %d slots for %d inputs", len(dst), len(xs)))
	}
	for i := range dst {
		dst[i] = 0
	}
	if len(xs) == 0 || c.m == 0 {
		return
	}
	mat.ForEachBlock(len(xs), c.m, blockConfigs, blockCenters, func(r0, r1, c0, c1 int) {
		for i := r0; i < r1; i++ {
			x := xs[i]
			s := dst[i]
			for j := c0; j < c1; j++ {
				off := j * c.dims
				cen := c.centers[off : off+len(x)]
				inv := c.invR2[off : off+len(x)]
				var e float64
				for k, xk := range x {
					d := xk - cen[k]
					e += d * d * inv[k]
				}
				s += c.weights[j] * math.Exp(-e)
			}
			dst[i] = s
		}
	})
}

// designInto fills h (len(xs) × c.m) with H[i][j] = hⱼ(xᵢ), tiled over
// both dimensions so the center/inverse-radius panels stay cache
// resident while config rows stream through.
func (c *Compiled) designInto(h *mat.Matrix, xs [][]float64) {
	mat.ForEachBlock(len(xs), c.m, blockConfigs, blockCenters, func(r0, r1, c0, c1 int) {
		for i := r0; i < r1; i++ {
			x := xs[i]
			row := h.Row(i)
			for j := c0; j < c1; j++ {
				off := j * c.dims
				cen := c.centers[off : off+len(x)]
				inv := c.invR2[off : off+len(x)]
				var e float64
				for k, xk := range x {
					d := xk - cen[k]
					e += d * d * inv[k]
				}
				row[j] = math.Exp(-e)
			}
		}
	})
}

// DesignMatrix evaluates every candidate basis at every row of xs into
// the len(xs)×len(bases) design matrix H (H[i][j] = hⱼ(xᵢ)) using the
// same blocked kernel as PredictBatch. The fit path (gram assembly in
// Fit's subset selection) and the serving path share it, so training
// and inference evaluate Gaussians with identical arithmetic.
func DesignMatrix(bases []Basis, xs [][]float64) *mat.Matrix {
	h := mat.New(len(xs), len(bases))
	if len(bases) == 0 || len(xs) == 0 {
		return h
	}
	dims, centers, invR2 := compileBases(bases)
	c := &Compiled{dims: dims, m: len(bases), centers: centers, invR2: invR2}
	c.designInto(h, xs)
	return h
}

// compiledCache lazily builds and memoizes a FitResult's compiled
// network.
type compiledCache struct {
	once sync.Once
	c    *Compiled
}

// Compiled returns the fitted network's batch evaluation form, built
// lazily and at most once per FitResult (concurrent callers share one
// build).
func (r *FitResult) Compiled() *Compiled {
	r.compiled.once.Do(func() { r.compiled.c = r.Net.Compile() })
	return r.compiled.c
}

// PredictBatch evaluates the fitted network at every row of xs through
// the compiled batch path, bit-identical to per-row Predict.
func (r *FitResult) PredictBatch(xs [][]float64) []float64 {
	return r.Compiled().PredictBatch(xs)
}
