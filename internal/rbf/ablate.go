package rbf

import (
	"math"

	"predperf/internal/rtree"
)

// FitTreeAllCenters fits output weights over *every* regression-tree
// node center, skipping AICc subset selection. It is the ablation
// baseline for the selection strategy: same candidates, no model-
// complexity control.
func FitTreeAllCenters(tr *rtree.Tree, x [][]float64, y []float64, alpha, minRadius float64) (*Network, float64, float64) {
	bases, _ := candidateBases(tr, alpha, minRadius)
	// Cap candidates at p−2 so the least-squares problem stays
	// overdetermined (keep the shallowest nodes, which come first in
	// breadth-first order).
	if max := len(x) - 2; len(bases) > max {
		bases = bases[:max]
	}
	gr := newGram(bases, x, y)
	all := make([]int, len(bases))
	for i := range all {
		all[i] = i
	}
	aicc, sse, w, ok := gr.aiccOf(all)
	if !ok {
		return &Network{}, math.Inf(1), 0
	}
	net := &Network{Bases: bases, Weights: w}
	return net, aicc, sse
}

// FitTreeGlobalRadius runs the usual tree-ordered subset selection but
// gives every candidate basis the same isotropic radius, ablating the
// radii = α × region-size rule of Eq. 8. The scalar radius itself is
// tuned over a grid by AICc, so the ablation compares against the best
// achievable fixed-radius model rather than a strawman.
func FitTreeGlobalRadius(tr *rtree.Tree, x [][]float64, y []float64, radiusGrid ...float64) (*Network, float64, float64) {
	if len(radiusGrid) == 0 {
		radiusGrid = []float64{0.25, 0.5, 1, 2, 4}
	}
	nodes := tr.Nodes()
	var bestNet *Network
	bestAICc, bestSSE := math.Inf(1), 0.0
	for _, radius := range radiusGrid {
		bases := make([]Basis, len(nodes))
		for i, n := range nodes {
			c := n.Center()
			r := make([]float64, len(c))
			for k := range r {
				r[k] = radius
			}
			bases[i] = Basis{Center: c, Radius: r}
		}
		gr := newGram(bases, x, y)
		sel, aicc, sse, w := selectTreeOrdered(gr, nodes)
		if aicc >= bestAICc {
			continue
		}
		net := &Network{}
		for i, bi := range sel {
			net.Bases = append(net.Bases, bases[bi])
			if w != nil {
				net.Weights = append(net.Weights, w[i])
			}
		}
		if net.Weights == nil {
			net.Weights = make([]float64, len(net.Bases))
		}
		bestNet, bestAICc, bestSSE = net, aicc, sse
	}
	if bestNet == nil {
		return &Network{}, math.Inf(1), 0
	}
	return bestNet, bestAICc, bestSSE
}

// FitTreeForwardSelection replaces the tree-ordered subset search with
// classical greedy forward selection over the same candidate set: start
// empty, repeatedly add the candidate whose inclusion lowers AICc the
// most, and stop when no addition improves it. Orr's paper compares the
// tree-ordered strategy against exactly this baseline.
func FitTreeForwardSelection(tr *rtree.Tree, x [][]float64, y []float64, alpha, minRadius float64) (*Network, float64, float64) {
	bases, _ := candidateBases(tr, alpha, minRadius)
	gr := newGram(bases, x, y)
	var sel []int
	in := make([]bool, len(bases))
	cur, curSSE, curW, ok := gr.aiccOf(nil)
	if !ok {
		return &Network{}, math.Inf(1), 0
	}
	for {
		bestIdx := -1
		bestAICc, bestSSE := cur, curSSE
		var bestW []float64
		for c := range bases {
			if in[c] {
				continue
			}
			trial := append(append([]int(nil), sel...), c)
			a, s, w, ok := gr.aiccOf(trial)
			if ok && a < bestAICc {
				bestAICc, bestSSE, bestW, bestIdx = a, s, w, c
			}
		}
		if bestIdx < 0 {
			break
		}
		sel = append(sel, bestIdx)
		in[bestIdx] = true
		cur, curSSE, curW = bestAICc, bestSSE, bestW
	}
	net := &Network{}
	for i, bi := range sel {
		net.Bases = append(net.Bases, bases[bi])
		if curW != nil {
			net.Weights = append(net.Weights, curW[i])
		}
	}
	if net.Weights == nil {
		net.Weights = make([]float64, len(net.Bases))
	}
	return net, cur, curSSE
}
