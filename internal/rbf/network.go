// Package rbf implements the Radial Basis Function networks of §2.3–§2.6:
// Gaussian basis functions with per-dimension radii (Eq. 2), centers and
// radii derived from a regression tree (radii = α × region size, Eq. 8),
// least-squares output weights (Eq. 1), Akaike-corrected information
// criterion model selection (Eq. 9), and Orr's tree-ordered center subset
// selection. Fit performs the (p_min, α) grid search of §2.6.
package rbf

import (
	"fmt"
	"math"
)

// Basis is one Gaussian radial basis function
//
//	h(x) = exp(−Σₖ (xₖ−cₖ)²/rₖ²)
//
// with center c and per-dimension radius vector r (paper Eq. 2).
type Basis struct {
	Center []float64
	Radius []float64

	// invR2 caches 1/rₖ² so Eval multiplies instead of dividing per
	// dimension. Populated by Precompute (fit and load paths call it);
	// a zero-value Basis still evaluates correctly through the slow
	// path, which performs the same 1/r² computation per call and is
	// therefore bit-identical to the cached path.
	invR2 []float64
}

// Precompute caches the per-dimension inverse squared radii. It must
// not race with Eval: call it once when the basis is constructed,
// before the basis is shared across goroutines.
func (b *Basis) Precompute() {
	inv := make([]float64, len(b.Radius))
	for k, r := range b.Radius {
		inv[k] = 1 / (r * r)
	}
	b.invR2 = inv
}

// Eval returns h(x).
func (b *Basis) Eval(x []float64) float64 {
	var s float64
	if inv := b.invR2; inv != nil {
		for k, xk := range x {
			d := xk - b.Center[k]
			s += d * d * inv[k]
		}
	} else {
		for k, xk := range x {
			d := xk - b.Center[k]
			s += d * d * (1 / (b.Radius[k] * b.Radius[k]))
		}
	}
	return math.Exp(-s)
}

// Network is a fitted RBF network: f(x) = Σⱼ wⱼ·hⱼ(x) (paper Eq. 1).
type Network struct {
	Bases   []Basis
	Weights []float64
}

// Predict evaluates the network at x.
func (n *Network) Predict(x []float64) float64 {
	var s float64
	for j := range n.Bases {
		s += n.Weights[j] * n.Bases[j].Eval(x)
	}
	return s
}

// PredictAll evaluates the network at each row of xs through the
// compiled batch path (one blocked design-matrix pass and one H·w
// product), bit-identical to calling Predict per row.
func (n *Network) PredictAll(xs [][]float64) []float64 {
	return n.Compile().PredictBatch(xs)
}

// Precompute caches 1/r² on every basis (see Basis.Precompute) and
// returns the network for chaining. Fit and model-load paths call it so
// the scalar Predict hot loop never divides.
func (n *Network) Precompute() *Network {
	for i := range n.Bases {
		n.Bases[i].Precompute()
	}
	return n
}

// M returns the number of basis functions (RBF centers) in the network.
func (n *Network) M() int { return len(n.Bases) }

func (n *Network) String() string {
	return fmt.Sprintf("rbf.Network{m=%d}", len(n.Bases))
}

// AICc is Akaike's corrected information criterion (paper Eq. 9, without
// the additive constant):
//
//	AICc = p·log(σ̂²) + 2m + 2m(m+1)/(p−m−1)
//
// where p is the sample size, m the number of centers, and σ̂² the error
// variance on the sample. It returns +Inf when m ≥ p−1 (the correction
// term's denominator vanishes), which also serves as the complexity cap.
func AICc(p, m int, sigma2 float64) float64 {
	if p-m-1 <= 0 {
		return math.Inf(1)
	}
	if sigma2 < 1e-300 {
		sigma2 = 1e-300 // a perfect fit would otherwise give −Inf
	}
	return float64(p)*math.Log(sigma2) + 2*float64(m) + 2*float64(m)*float64(m+1)/float64(p-m-1)
}
