// Package rbf implements the Radial Basis Function networks of §2.3–§2.6:
// Gaussian basis functions with per-dimension radii (Eq. 2), centers and
// radii derived from a regression tree (radii = α × region size, Eq. 8),
// least-squares output weights (Eq. 1), Akaike-corrected information
// criterion model selection (Eq. 9), and Orr's tree-ordered center subset
// selection. Fit performs the (p_min, α) grid search of §2.6.
package rbf

import (
	"fmt"
	"math"
)

// Basis is one Gaussian radial basis function
//
//	h(x) = exp(−Σₖ (xₖ−cₖ)²/rₖ²)
//
// with center c and per-dimension radius vector r (paper Eq. 2).
type Basis struct {
	Center []float64
	Radius []float64
}

// Eval returns h(x).
func (b *Basis) Eval(x []float64) float64 {
	var s float64
	for k, xk := range x {
		d := (xk - b.Center[k]) / b.Radius[k]
		s += d * d
	}
	return math.Exp(-s)
}

// Network is a fitted RBF network: f(x) = Σⱼ wⱼ·hⱼ(x) (paper Eq. 1).
type Network struct {
	Bases   []Basis
	Weights []float64
}

// Predict evaluates the network at x.
func (n *Network) Predict(x []float64) float64 {
	var s float64
	for j := range n.Bases {
		s += n.Weights[j] * n.Bases[j].Eval(x)
	}
	return s
}

// PredictAll evaluates the network at each row of xs.
func (n *Network) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = n.Predict(x)
	}
	return out
}

// M returns the number of basis functions (RBF centers) in the network.
func (n *Network) M() int { return len(n.Bases) }

func (n *Network) String() string {
	return fmt.Sprintf("rbf.Network{m=%d}", len(n.Bases))
}

// AICc is Akaike's corrected information criterion (paper Eq. 9, without
// the additive constant):
//
//	AICc = p·log(σ̂²) + 2m + 2m(m+1)/(p−m−1)
//
// where p is the sample size, m the number of centers, and σ̂² the error
// variance on the sample. It returns +Inf when m ≥ p−1 (the correction
// term's denominator vanishes), which also serves as the complexity cap.
func AICc(p, m int, sigma2 float64) float64 {
	if p-m-1 <= 0 {
		return math.Inf(1)
	}
	if sigma2 < 1e-300 {
		sigma2 = 1e-300 // a perfect fit would otherwise give −Inf
	}
	return float64(p)*math.Log(sigma2) + 2*float64(m) + 2*float64(m)*float64(m+1)/float64(p-m-1)
}
