package rbf

import (
	"os"
	"testing"

	"predperf/internal/obs"
)

// TestMain runs the whole package — including the grid-search
// worker-count bit-identity tests — with span timing enabled, proving
// that observability never perturbs the fitted models.
func TestMain(m *testing.M) {
	obs.Enable()
	os.Exit(m.Run())
}
