package rbf

import (
	"math/rand"
	"testing"
)

// randomNetwork builds a network with m Gaussian bases over dims
// dimensions, deliberately NOT precomputed, so tests can exercise both
// the slow and cached scalar paths.
func randomNetwork(rng *rand.Rand, m, dims int) *Network {
	n := &Network{}
	for j := 0; j < m; j++ {
		c := make([]float64, dims)
		r := make([]float64, dims)
		for k := range c {
			c[k] = rng.Float64()
			r[k] = 0.05 + rng.Float64()
		}
		n.Bases = append(n.Bases, Basis{Center: c, Radius: r})
		n.Weights = append(n.Weights, rng.NormFloat64())
	}
	return n
}

func randomInputs(rng *rand.Rand, n, dims int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, dims)
		for k := range x {
			x[k] = rng.Float64()
		}
		xs[i] = x
	}
	return xs
}

// TestPrecomputeBitIdentical: the cached 1/r² path must reproduce the
// per-call-division path exactly — the hoist is pure performance.
func TestPrecomputeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	slow := randomNetwork(rng, 40, 9)
	fast := &Network{Bases: make([]Basis, len(slow.Bases)), Weights: slow.Weights}
	copy(fast.Bases, slow.Bases)
	fast.Precompute()
	for _, x := range randomInputs(rng, 50, 9) {
		if a, b := slow.Predict(x), fast.Predict(x); a != b {
			t.Fatalf("precomputed Predict = %x, slow path = %x", b, a)
		}
	}
}

// TestCompiledMatchesScalar: the compiled batch evaluator must be
// bit-identical to per-point scalar prediction, across sizes that
// exercise partial tiles, exact tile multiples, and degenerate shapes.
func TestCompiledMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []struct{ m, dims, n int }{
		{1, 1, 1},
		{3, 9, 5},
		{40, 9, 1},
		{blockCenters, 9, blockConfigs},         // exactly one tile
		{blockCenters + 7, 9, blockConfigs + 9}, // ragged tail tiles
		{130, 4, 300},                           // multiple tiles both ways
	} {
		net := randomNetwork(rng, shape.m, shape.dims)
		net.Precompute()
		xs := randomInputs(rng, shape.n, shape.dims)
		cm := net.Compile()
		if cm.M() != shape.m || cm.Dims() != shape.dims {
			t.Fatalf("compiled shape = %d×%d, want %d×%d", cm.M(), cm.Dims(), shape.m, shape.dims)
		}
		got := cm.PredictBatch(xs)
		for i, x := range xs {
			want := net.Predict(x)
			if got[i] != want {
				t.Fatalf("shape %+v: PredictBatch[%d] = %x, scalar = %x", shape, i, got[i], want)
			}
			if v := cm.Predict(x); v != want {
				t.Fatalf("shape %+v: Compiled.Predict[%d] = %x, scalar = %x", shape, i, v, want)
			}
		}
	}
}

// TestCompiledWithoutPrecompute: compiling a network whose bases never
// saw Precompute must give the same values (Compile derives 1/r² with
// the identical expression).
func TestCompiledWithoutPrecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := randomNetwork(rng, 25, 6)
	xs := randomInputs(rng, 64, 6)
	got := net.Compile().PredictBatch(xs)
	for i, x := range xs {
		if want := net.Predict(x); got[i] != want {
			t.Fatalf("unprecomputed compile: batch[%d] = %x, scalar = %x", i, got[i], want)
		}
	}
}

// TestPredictAllMatchesPredict: PredictAll now routes through the
// compiled path and must stay bit-identical to per-row Predict.
func TestPredictAllMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := randomNetwork(rng, 30, 9)
	xs := randomInputs(rng, 100, 9)
	all := net.PredictAll(xs)
	for i, x := range xs {
		if want := net.Predict(x); all[i] != want {
			t.Fatalf("PredictAll[%d] = %x, Predict = %x", i, all[i], want)
		}
	}
}

// TestCompiledEmptyAndZero: degenerate networks and empty batches must
// not panic and must agree with the scalar path.
func TestCompiledEmptyAndZero(t *testing.T) {
	empty := &Network{}
	if got := empty.Compile().PredictBatch([][]float64{{0.5}, {0.2}}); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty network batch = %v, want zeros", got)
	}
	rng := rand.New(rand.NewSource(5))
	net := randomNetwork(rng, 4, 3)
	if got := net.Compile().PredictBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d values", len(got))
	}
}

// TestDesignMatrixMatchesEval: the shared blocked kernel must fill
// H[i][j] with exactly bases[j].Eval(x[i]).
func TestDesignMatrixMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := randomNetwork(rng, 70, 9)
	net.Precompute()
	xs := randomInputs(rng, 90, 9)
	h := DesignMatrix(net.Bases, xs)
	if h.Rows != len(xs) || h.Cols != len(net.Bases) {
		t.Fatalf("H is %d×%d, want %d×%d", h.Rows, h.Cols, len(xs), len(net.Bases))
	}
	for i, x := range xs {
		for j := range net.Bases {
			if got, want := h.At(i, j), net.Bases[j].Eval(x); got != want {
				t.Fatalf("H[%d][%d] = %x, Eval = %x", i, j, got, want)
			}
		}
	}
}

// TestFitResultPredictBatch: the lazily compiled FitResult path must be
// bit-identical to FitResult.Predict, including under concurrent first
// use (the sync.Once race is exercised by `go test -race`).
func TestFitResultPredictBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	fr := &FitResult{Net: randomNetwork(rng, 20, 9).Precompute()}
	xs := randomInputs(rng, 33, 9)
	done := make(chan []float64, 4)
	for g := 0; g < 4; g++ {
		go func() { done <- fr.PredictBatch(xs) }()
	}
	for g := 0; g < 4; g++ {
		got := <-done
		for i, x := range xs {
			if want := fr.Predict(x); got[i] != want {
				t.Fatalf("FitResult.PredictBatch[%d] = %x, Predict = %x", i, got[i], want)
			}
		}
	}
}

// Benchmarks: scalar per-point evaluation (with and without the hoisted
// 1/r²) against the compiled blocked batch pass, at serving-relevant
// batch sizes. cmd/benchpredict packages the same comparison (plus the
// coalesced HTTP path) into BENCH_predict.json.
func benchmarkNetwork(m int) (*Network, [][]float64) {
	rng := rand.New(rand.NewSource(1))
	net := randomNetwork(rng, m, 9)
	net.Precompute()
	return net, randomInputs(rng, 512, 9)
}

func BenchmarkPredictScalar(b *testing.B) {
	net, xs := benchmarkNetwork(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(xs[i%len(xs)])
	}
}

func BenchmarkPredictScalarNoHoist(b *testing.B) {
	net, xs := benchmarkNetwork(60)
	for i := range net.Bases {
		net.Bases[i].invR2 = nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(xs[i%len(xs)])
	}
}

func BenchmarkPredictBatch512(b *testing.B) {
	net, xs := benchmarkNetwork(60)
	cm := net.Compile()
	out := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.PredictBatchTo(out, xs)
	}
}
