package rbf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"predperf/internal/rtree"
)

func TestBasisEvalPeakAtCenter(t *testing.T) {
	b := Basis{Center: []float64{0.3, 0.7}, Radius: []float64{0.5, 0.5}}
	if got := b.Eval([]float64{0.3, 0.7}); got != 1 {
		t.Fatalf("Eval(center) = %v, want 1", got)
	}
	// Response strictly decreases with distance from the center.
	prev := 1.0
	for _, d := range []float64{0.1, 0.2, 0.4, 0.8} {
		v := b.Eval([]float64{0.3 + d, 0.7})
		if v >= prev {
			t.Fatalf("Eval not decreasing at distance %v: %v >= %v", d, v, prev)
		}
		prev = v
	}
}

func TestBasisAnisotropicRadii(t *testing.T) {
	b := Basis{Center: []float64{0.5, 0.5}, Radius: []float64{0.1, 1.0}}
	// Same displacement hurts more along the tight dimension.
	vTight := b.Eval([]float64{0.6, 0.5})
	vLoose := b.Eval([]float64{0.5, 0.6})
	if vTight >= vLoose {
		t.Fatalf("anisotropy violated: tight %v >= loose %v", vTight, vLoose)
	}
	// Eq. 2: exp(-(0.1/0.1)²) = e⁻¹ along the tight axis.
	if math.Abs(vTight-math.Exp(-1)) > 1e-12 {
		t.Fatalf("vTight = %v, want e^-1", vTight)
	}
}

func TestAICcProperties(t *testing.T) {
	// More centers at equal variance must cost more.
	if AICc(100, 10, 0.5) >= AICc(100, 20, 0.5) {
		t.Fatal("AICc not increasing in m")
	}
	// Lower variance at equal m must score better.
	if AICc(100, 10, 0.1) >= AICc(100, 10, 0.5) {
		t.Fatal("AICc not increasing in sigma2")
	}
	// Saturated models are rejected.
	if !math.IsInf(AICc(10, 9, 0.5), 1) || !math.IsInf(AICc(10, 20, 0.5), 1) {
		t.Fatal("AICc must be +Inf when p-m-1 <= 0")
	}
	// Perfect fits do not produce -Inf.
	if math.IsInf(AICc(100, 5, 0), -1) {
		t.Fatal("AICc(-Inf) on zero variance")
	}
}

// sampleGrid builds a 2-D grid sample of f.
func sampleGrid(n int, f func(x, y float64) float64) (xs [][]float64, ys []float64) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i) / float64(n-1)
			y := float64(j) / float64(n-1)
			xs = append(xs, []float64{x, y})
			ys = append(ys, f(x, y))
		}
	}
	return
}

func TestFitApproximatesSmoothSurface(t *testing.T) {
	f := func(x, y float64) float64 { return math.Sin(3*x) + y*y }
	xs, ys := sampleGrid(7, f) // 49 points
	res, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Check interpolation error at off-grid points.
	rng := rand.New(rand.NewSource(1))
	var maxErr float64
	for i := 0; i < 100; i++ {
		x, y := rng.Float64(), rng.Float64()
		got := res.Predict([]float64{x, y})
		if e := math.Abs(got - f(x, y)); e > maxErr {
			maxErr = e
		}
	}
	// Response range is ~[0,1.14]; demand max error well under 15%.
	if maxErr > 0.15 {
		t.Fatalf("max prediction error %v too large", maxErr)
	}
}

func TestFitCapturesNonlinearInteraction(t *testing.T) {
	// The motivating example of §1: response curvature from an
	// interaction term that a linear-in-parameters model cannot express.
	f := func(x, y float64) float64 { return 1 + 2*math.Exp(-3*x)*y }
	xs, ys := sampleGrid(7, f)
	res, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sse, tot float64
	mean := 0.0
	for _, v := range ys {
		mean += v
	}
	mean /= float64(len(ys))
	for i, x := range xs {
		d := res.Predict(x) - ys[i]
		sse += d * d
		tot += (ys[i] - mean) * (ys[i] - mean)
	}
	if sse/tot > 0.02 {
		t.Fatalf("R² too low: residual fraction %v", sse/tot)
	}
}

func TestFitSelectsFewerCentersThanHalfSample(t *testing.T) {
	// §4: "the number of RBF centers is typically restricted to much
	// less than half the number of sample points."
	f := func(x, y float64) float64 { return x + y }
	xs, ys := sampleGrid(8, f) // 64 points
	res, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCenters() >= len(xs)/2 {
		t.Fatalf("selected %d centers for %d samples", res.NumCenters(), len(xs))
	}
}

func TestFitDiagnosticsPopulated(t *testing.T) {
	xs, ys := sampleGrid(6, func(x, y float64) float64 { return x*y + 0.5 })
	res, err := Fit(xs, ys, Options{PMinGrid: []int{1, 2}, AlphaGrid: []float64{4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PMin != 1 && res.PMin != 2 {
		t.Fatalf("PMin = %d not from grid", res.PMin)
	}
	if res.Alpha != 4 && res.Alpha != 8 {
		t.Fatalf("Alpha = %v not from grid", res.Alpha)
	}
	if math.IsInf(res.AICc, 0) || math.IsNaN(res.AICc) {
		t.Fatalf("AICc = %v", res.AICc)
	}
	if res.Tree == nil || res.Net == nil {
		t.Fatal("missing tree or network")
	}
}

func TestFitEmptySample(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("expected error for empty sample")
	}
}

func TestFitConstantResponse(t *testing.T) {
	xs, ys := sampleGrid(4, func(x, y float64) float64 { return 3.25 })
	res, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Predict([]float64{0.33, 0.77})
	if math.Abs(got-3.25) > 0.05 {
		t.Fatalf("constant prediction = %v, want 3.25", got)
	}
}

func TestSelectionBeatsAllLeafCenters(t *testing.T) {
	// AICc subset selection should never be (much) worse than simply
	// using every leaf center — that is its purpose.
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, math.Cos(4*x[0])*x[1]+rng.NormFloat64()*0.05)
	}
	tr := rtree.Build(xs, ys, 2)
	alpha, minR := 6.0, 0.02
	net, aicc, _ := FitTree(tr, xs, ys, alpha, minR)
	// All-nodes model for comparison.
	bases, _ := candidateBases(tr, alpha, minR)
	gr := newGram(bases, xs, ys)
	all := make([]int, len(bases))
	for i := range all {
		all[i] = i
	}
	allAICc, _, _, ok := gr.aiccOf(all)
	if ok && aicc > allAICc+1e-9 {
		t.Fatalf("selected model AICc %v worse than all-centers %v", aicc, allAICc)
	}
	if net.M() >= len(bases) {
		t.Fatalf("selection kept all %d candidates", len(bases))
	}
}

func TestGramSubsetFitMatchesDirectLS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 30; i++ {
		xs = append(xs, []float64{rng.Float64(), rng.Float64()})
		ys = append(ys, rng.NormFloat64())
	}
	bases := []Basis{
		{Center: []float64{0.2, 0.2}, Radius: []float64{0.5, 0.5}},
		{Center: []float64{0.8, 0.8}, Radius: []float64{0.5, 0.5}},
		{Center: []float64{0.5, 0.5}, Radius: []float64{1, 1}},
	}
	gr := newGram(bases, xs, ys)
	w, sse, ok := gr.fitSubset([]int{0, 1, 2})
	if !ok {
		t.Fatal("fitSubset failed")
	}
	// Recompute SSE directly from predictions.
	var direct float64
	for i, x := range xs {
		pred := 0.0
		for j := range bases {
			pred += w[j] * bases[j].Eval(x)
		}
		d := pred - ys[i]
		direct += d * d
	}
	if math.Abs(direct-sse) > 1e-6*(1+direct) {
		t.Fatalf("gram SSE %v != direct SSE %v", sse, direct)
	}
}

// Property: network predictions are bounded by ‖w‖₁ since each basis has
// range (0,1].
func TestQuickPredictionBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := &Network{}
		var l1 float64
		for j := 0; j < 5; j++ {
			net.Bases = append(net.Bases, Basis{
				Center: []float64{rng.Float64(), rng.Float64()},
				Radius: []float64{0.1 + rng.Float64(), 0.1 + rng.Float64()},
			})
			w := rng.NormFloat64()
			net.Weights = append(net.Weights, w)
			l1 += math.Abs(w)
		}
		for i := 0; i < 20; i++ {
			v := net.Predict([]float64{rng.Float64() * 2, rng.Float64() * 2})
			if math.Abs(v) > l1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fit succeeds and gives finite predictions on random smooth
// targets.
func TestQuickFitFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		var xs [][]float64
		var ys []float64
		for i := 0; i < 36; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			xs = append(xs, x)
			ys = append(ys, a*x[0]+b*x[1]+c*x[0]*x[1])
		}
		res, err := Fit(xs, ys, Options{PMinGrid: []int{2}, AlphaGrid: []float64{5, 9}})
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			v := res.Predict([]float64{rng.Float64(), rng.Float64()})
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictAllAndString(t *testing.T) {
	net := &Network{
		Bases:   []Basis{{Center: []float64{0.5}, Radius: []float64{1}}},
		Weights: []float64{2},
	}
	xs := [][]float64{{0.5}, {0.9}}
	out := net.PredictAll(xs)
	if len(out) != 2 || out[0] != 2 {
		t.Fatalf("PredictAll = %v", out)
	}
	if net.String() != "rbf.Network{m=1}" {
		t.Fatalf("String = %q", net.String())
	}
}

func TestFitTreeAllCentersFitsTraining(t *testing.T) {
	xs, ys := sampleGrid(6, func(x, y float64) float64 { return x + 2*y })
	tr := rtree.Build(xs, ys, 2)
	net, aicc, sse := FitTreeAllCenters(tr, xs, ys, 7, 0.02)
	if net.M() == 0 || math.IsInf(aicc, 0) && sse == 0 {
		t.Fatalf("all-centers fit failed: m=%d aicc=%v sse=%v", net.M(), aicc, sse)
	}
	// All-centers must fit training data at least as tightly as the
	// selected subset (more parameters, same family).
	_, _, selSSE := FitTree(tr, xs, ys, 7, 0.02)
	if sse > selSSE+1e-9 {
		t.Fatalf("all-centers SSE %v above selected-subset SSE %v", sse, selSSE)
	}
	// Candidate cap: never more bases than p-2.
	if net.M() > len(xs)-2 {
		t.Fatalf("all-centers kept %d bases for %d points", net.M(), len(xs))
	}
}

func TestFitTreeGlobalRadiusPicksFromGrid(t *testing.T) {
	xs, ys := sampleGrid(6, func(x, y float64) float64 { return math.Sin(3*x) + y })
	tr := rtree.Build(xs, ys, 2)
	net, aicc, _ := FitTreeGlobalRadius(tr, xs, ys, 0.5, 1)
	if net.M() == 0 || math.IsInf(aicc, 1) {
		t.Fatalf("global-radius fit failed: m=%d aicc=%v", net.M(), aicc)
	}
	// All radii identical and isotropic.
	r0 := net.Bases[0].Radius[0]
	for _, b := range net.Bases {
		for _, r := range b.Radius {
			if r != r0 {
				t.Fatalf("radius %v != %v: not global", r, r0)
			}
		}
	}
}

func TestForwardSelectionCompetitive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, math.Sin(4*x[0])+x[1])
	}
	tr := rtree.Build(xs, ys, 2)
	fwdNet, fwdAICc, _ := FitTreeForwardSelection(tr, xs, ys, 7, 0.02)
	_, treeAICc, _ := FitTree(tr, xs, ys, 7, 0.02)
	if fwdNet.M() == 0 || math.IsInf(fwdAICc, 1) {
		t.Fatalf("forward selection failed: m=%d", fwdNet.M())
	}
	// Orr's result, reproduced: the tree-ordered strategy finds a model
	// with a better (lower) criterion than plain greedy forward
	// selection, which stalls in local minima on these candidate sets.
	if treeAICc > fwdAICc {
		t.Fatalf("tree-ordered AICc %v worse than forward %v", treeAICc, fwdAICc)
	}
	if fwdNet.M() >= len(xs) {
		t.Fatalf("forward selection kept %d bases", fwdNet.M())
	}
}

func TestFitIdenticalAcrossWorkerCounts(t *testing.T) {
	// The grid search must select the same (p_min, α) cell with the same
	// weights no matter how many goroutines score the grid.
	rng := rand.New(rand.NewSource(8))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 70; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, 1+math.Exp(-2*x[0])*x[1]+0.3*x[2])
	}
	grid := Options{PMinGrid: []int{1, 2, 3}, AlphaGrid: []float64{3, 5, 7, 9}}
	grid.Workers = 1
	serial, err := Fit(xs, ys, grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 12} {
		grid.Workers = workers
		got, err := Fit(xs, ys, grid)
		if err != nil {
			t.Fatal(err)
		}
		if got.PMin != serial.PMin || got.Alpha != serial.Alpha {
			t.Fatalf("workers=%d selected (%d, %v), serial selected (%d, %v)",
				workers, got.PMin, got.Alpha, serial.PMin, serial.Alpha)
		}
		if got.AICc != serial.AICc || got.SSE != serial.SSE {
			t.Fatalf("workers=%d criterion (%v, %v) != serial (%v, %v)",
				workers, got.AICc, got.SSE, serial.AICc, serial.SSE)
		}
		if got.Net.M() != serial.Net.M() {
			t.Fatalf("workers=%d kept %d centers, serial %d", workers, got.Net.M(), serial.Net.M())
		}
		for i := range serial.Net.Weights {
			if got.Net.Weights[i] != serial.Net.Weights[i] {
				t.Fatalf("workers=%d weight %d differs: %v vs %v",
					workers, i, got.Net.Weights[i], serial.Net.Weights[i])
			}
		}
	}
}
