package rbf

import (
	"context"
	"errors"
	"math"
	"strconv"

	"predperf/internal/obs"
	"predperf/internal/par"
	"predperf/internal/rtree"
)

// Grid-search counters (internal/obs): how many (p_min, α) cells were
// fitted, how many regression trees were built to seed them, and how
// many basis functions the winning models kept.
var (
	cGridCells = obs.NewCounter("rbf.grid_cells")
	cTrees     = obs.NewCounter("rbf.trees_built")
	cBases     = obs.NewCounter("rbf.bases_selected")
)

// Options controls the (p_min, α) grid search of §2.6. Zero values take
// the defaults, which bracket the best settings reported in the paper's
// Table 4 (p_min typically 1, α typically 5–12).
type Options struct {
	PMinGrid  []int     // regression-tree leaf-size candidates
	AlphaGrid []float64 // radius scale candidates (Eq. 8)
	MinRadius float64   // numerical floor for per-dimension radii
	// Workers bounds the goroutines used by the grid search (par.Workers
	// semantics: 1 = serial, 0/negative = all CPUs). Every grid cell is
	// fitted independently into a fixed slot and the winner is chosen by
	// a grid-order scan, so the selected model is bit-identical for any
	// worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if len(o.PMinGrid) == 0 {
		o.PMinGrid = []int{1, 2}
	}
	if len(o.AlphaGrid) == 0 {
		o.AlphaGrid = []float64{3, 5, 7, 9, 12}
	}
	if o.MinRadius <= 0 {
		o.MinRadius = 0.02
	}
	return o
}

// FitResult is a fitted model plus the diagnostics the paper reports in
// Table 4: the winning method parameters, the number of selected RBF
// centers, and the criterion value.
type FitResult struct {
	Net   *Network
	Tree  *rtree.Tree
	PMin  int
	Alpha float64
	AICc  float64
	SSE   float64 // training sum of squared errors

	// compiled memoizes the batch evaluation form (see Compiled). The
	// sync.Once inside means a FitResult must not be copied by value
	// once in use; every construction site hands out pointers.
	compiled compiledCache
}

// NumCenters returns the number of RBF centers in the selected model.
func (r *FitResult) NumCenters() int { return r.Net.M() }

// Predict evaluates the fitted network.
func (r *FitResult) Predict(x []float64) float64 { return r.Net.Predict(x) }

// ErrNoModel is returned when no grid combination produced a usable fit.
var ErrNoModel = errors.New("rbf: no (p_min, alpha) combination produced a finite model")

// Fit builds RBF network models on the sample (x, y) for every (p_min, α)
// in the grid and returns the model with the lowest AICc, reproducing the
// method-parameter optimization of §2.6. Regression trees are built once
// per p_min and shared (read-only) across that row's α fits; the grid
// cells are evaluated concurrently under Options.Workers. Each cell's
// result lands in a fixed slot and the minimum-AICc scan walks the grid
// in (p_min-major, α-minor) order with strict comparison, so ties break
// toward the earliest grid cell exactly as the serial loop did.
func Fit(x [][]float64, y []float64, opt Options) (*FitResult, error) {
	return FitCtx(context.Background(), x, y, opt)
}

// FitCtx is Fit with context propagation: when ctx carries an obs.Trace,
// the fit span and one child span per (p_min, α) grid cell attach to it,
// so the Chrome trace export shows the grid search as parallel lanes.
// Tracing only records timings — the selected model is bit-identical
// with or without a trace.
func FitCtx(ctx context.Context, x [][]float64, y []float64, opt Options) (*FitResult, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("rbf: sample is empty or mismatched")
	}
	opt = opt.withDefaults()
	ctx, end := obs.StartSpanCtx(ctx, "rbf.fit")
	defer end()
	traced := obs.TraceFrom(ctx) != nil
	w := par.Workers(opt.Workers)
	trees := par.Map(w, opt.PMinGrid, func(_, pmin int) *rtree.Tree {
		cTrees.Inc()
		return rtree.Build(x, y, pmin)
	})
	na := len(opt.AlphaGrid)
	cells := make([]*FitResult, len(opt.PMinGrid)*na)
	par.For(w, len(cells), func(c int) {
		pi, ai := c/na, c%na
		tr, alpha := trees[pi], opt.AlphaGrid[ai]
		if traced {
			_, endCell := obs.StartSpanCtx(ctx, "rbf.grid_cell",
				"p_min", strconv.Itoa(opt.PMinGrid[pi]),
				"alpha", strconv.FormatFloat(alpha, 'g', -1, 64))
			defer endCell()
		}
		net, aicc, sse := FitTree(tr, x, y, alpha, opt.MinRadius)
		cGridCells.Inc()
		if math.IsInf(aicc, 1) || net.M() == 0 {
			return
		}
		cells[c] = &FitResult{Net: net, Tree: tr, PMin: opt.PMinGrid[pi], Alpha: alpha, AICc: aicc, SSE: sse}
	})
	var best *FitResult
	for _, r := range cells {
		if r != nil && (best == nil || r.AICc < best.AICc) {
			best = r
		}
	}
	if best == nil {
		return nil, ErrNoModel
	}
	cBases.Add(int64(best.Net.M()))
	return best, nil
}
