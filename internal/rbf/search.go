package rbf

import (
	"errors"
	"math"

	"predperf/internal/rtree"
)

// Options controls the (p_min, α) grid search of §2.6. Zero values take
// the defaults, which bracket the best settings reported in the paper's
// Table 4 (p_min typically 1, α typically 5–12).
type Options struct {
	PMinGrid  []int     // regression-tree leaf-size candidates
	AlphaGrid []float64 // radius scale candidates (Eq. 8)
	MinRadius float64   // numerical floor for per-dimension radii
}

func (o Options) withDefaults() Options {
	if len(o.PMinGrid) == 0 {
		o.PMinGrid = []int{1, 2}
	}
	if len(o.AlphaGrid) == 0 {
		o.AlphaGrid = []float64{3, 5, 7, 9, 12}
	}
	if o.MinRadius <= 0 {
		o.MinRadius = 0.02
	}
	return o
}

// FitResult is a fitted model plus the diagnostics the paper reports in
// Table 4: the winning method parameters, the number of selected RBF
// centers, and the criterion value.
type FitResult struct {
	Net   *Network
	Tree  *rtree.Tree
	PMin  int
	Alpha float64
	AICc  float64
	SSE   float64 // training sum of squared errors
}

// NumCenters returns the number of RBF centers in the selected model.
func (r *FitResult) NumCenters() int { return r.Net.M() }

// Predict evaluates the fitted network.
func (r *FitResult) Predict(x []float64) float64 { return r.Net.Predict(x) }

// ErrNoModel is returned when no grid combination produced a usable fit.
var ErrNoModel = errors.New("rbf: no (p_min, alpha) combination produced a finite model")

// Fit builds RBF network models on the sample (x, y) for every (p_min, α)
// in the grid and returns the model with the lowest AICc, reproducing the
// method-parameter optimization of §2.6. Regression trees are built once
// per p_min and shared across α values.
func Fit(x [][]float64, y []float64, opt Options) (*FitResult, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("rbf: sample is empty or mismatched")
	}
	opt = opt.withDefaults()
	var best *FitResult
	for _, pmin := range opt.PMinGrid {
		tr := rtree.Build(x, y, pmin)
		for _, alpha := range opt.AlphaGrid {
			net, aicc, sse := FitTree(tr, x, y, alpha, opt.MinRadius)
			if math.IsInf(aicc, 1) || net.M() == 0 {
				continue
			}
			if best == nil || aicc < best.AICc {
				best = &FitResult{Net: net, Tree: tr, PMin: pmin, Alpha: alpha, AICc: aicc, SSE: sse}
			}
		}
	}
	if best == nil {
		return nil, ErrNoModel
	}
	return best, nil
}
