package rbf

import (
	"math"

	"predperf/internal/rtree"
)

// candidateBases turns every regression-tree node into a candidate basis:
// the basis center is the node's hyper-rectangle center and the radius is
// α times the rectangle's size (paper Eq. 8), floored at minRadius to
// keep deep, thin regions numerically usable.
func candidateBases(tr *rtree.Tree, alpha, minRadius float64) ([]Basis, []*rtree.Node) {
	nodes := tr.Nodes()
	bases := make([]Basis, len(nodes))
	for i, n := range nodes {
		r := n.Size()
		for k := range r {
			r[k] *= alpha
			if r[k] < minRadius {
				r[k] = minRadius
			}
		}
		bases[i] = Basis{Center: n.Center(), Radius: r}
		bases[i].Precompute()
	}
	return bases, nodes
}

// selectTreeOrdered runs Orr's tree-ordered subset selection (§2.5): it
// starts from the root center, then walks the tree breadth-first; at each
// non-terminal node it tries all 8 include/exclude combinations of the
// node's center and its two children's centers (all other selected
// centers held fixed) and keeps the combination with the lowest AICc.
// It returns the selected candidate indices and the final fit.
func selectTreeOrdered(gr *gram, nodes []*rtree.Node) (sel []int, aicc, sse float64, w []float64) {
	index := make(map[*rtree.Node]int, len(nodes))
	for i, n := range nodes {
		index[n] = i
	}
	selected := make(map[int]bool)
	selected[0] = true // the root's center: the center of the design space
	cur, curSSE, curW, ok := gr.aiccOf(keys(selected))
	if !ok {
		selected = map[int]bool{}
		cur, curSSE, curW, _ = gr.aiccOf(nil)
	}

	queue := []*rtree.Node{nodes[0]}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.Leaf() {
			continue
		}
		ni, li, ri := index[n], index[n.Left], index[n.Right]
		bestCombo := -1
		bestAICc, bestSSE := cur, curSSE
		bestW := curW
		var bestSel []int
		for combo := 0; combo < 8; combo++ {
			trial := cloneSet(selected)
			setMembership(trial, ni, combo&1 != 0)
			setMembership(trial, li, combo&2 != 0)
			setMembership(trial, ri, combo&4 != 0)
			if equalSets(trial, selected) {
				continue
			}
			a, s, tw, ok := gr.aiccOf(keys(trial))
			if !ok {
				continue
			}
			if a < bestAICc {
				bestAICc, bestSSE, bestW, bestCombo = a, s, tw, combo
				bestSel = keys(trial)
			}
		}
		if bestCombo >= 0 {
			selected = map[int]bool{}
			for _, i := range bestSel {
				selected[i] = true
			}
			cur, curSSE, curW = bestAICc, bestSSE, bestW
		}
		queue = append(queue, n.Left, n.Right)
	}
	return keys(selected), cur, curSSE, curW
}

func cloneSet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func setMembership(s map[int]bool, i int, in bool) {
	if in {
		s[i] = true
	} else {
		delete(s, i)
	}
}

func equalSets(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// keys returns the set's members in ascending order.
func keys(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	// insertion sort: sets are small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FitTree builds the candidate set from a fitted regression tree at a
// given α, runs subset selection, and returns the resulting network with
// its selection criterion value and training SSE.
func FitTree(tr *rtree.Tree, x [][]float64, y []float64, alpha, minRadius float64) (*Network, float64, float64) {
	bases, nodes := candidateBases(tr, alpha, minRadius)
	gr := newGram(bases, x, y)
	sel, aicc, sse, w := selectTreeOrdered(gr, nodes)
	net := &Network{}
	for i, bi := range sel {
		net.Bases = append(net.Bases, bases[bi])
		if w != nil {
			net.Weights = append(net.Weights, w[i])
		}
	}
	if net.Weights == nil {
		net.Weights = make([]float64, len(net.Bases))
	}
	if math.IsNaN(aicc) {
		aicc = math.Inf(1)
	}
	return net, aicc, sse
}
