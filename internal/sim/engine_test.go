package sim

import (
	"testing"

	"predperf/internal/trace"
)

// mkTrace builds a tiny hand-rolled trace: a loop of ALU code (so the
// I-cache footprint is small) with a branch every blockLen instructions.
// All branches except the loop-closing one fall through, so control flow
// is trivially predictable.
func mkTrace(n, blockLen int) trace.Trace {
	const loopInsts = 256 // 1KB of code
	tr := make(trace.Trace, n)
	base := uint64(0x400000)
	for i := range tr {
		pos := i % loopInsts
		pc := base + uint64(4*pos)
		in := trace.Inst{PC: pc, Op: trace.IntALU}
		if (pos+1)%blockLen == 0 || pos == loopInsts-1 {
			in.Op = trace.Branch
			in.Taken = pos == loopInsts-1
			if in.Taken {
				in.Target = base
			} else {
				in.Target = pc + 4
			}
		}
		tr[i] = in
	}
	return tr
}

func run(name string, n int, cfg Config) Result {
	tr, err := trace.Cached(name, n)
	if err != nil {
		panic(err)
	}
	return Run(cfg, tr)
}

func TestEmptyTrace(t *testing.T) {
	r := Run(DefaultConfig(), nil)
	if r.Cycles != 0 || r.Instructions != 0 {
		t.Fatalf("empty trace ran: %+v", r)
	}
}

func TestIdealILPApproachesWidth(t *testing.T) {
	// Independent single-cycle ALU ops with perfect prediction: IPC must
	// approach the machine width.
	cfg := DefaultConfig()
	tr := mkTrace(20000, 16)
	r := Run(cfg, tr)
	if r.CPI() > 0.5 { // 4-wide: ideal CPI 0.25; allow pipeline overheads
		t.Fatalf("ideal-ILP CPI = %v, want < 0.5", r.CPI())
	}
	if r.Instructions != 20000 {
		t.Fatalf("committed %d", r.Instructions)
	}
}

func TestSerialDependencyChainBoundsIPC(t *testing.T) {
	// Every instruction depends on its predecessor: CPI cannot drop
	// below 1 regardless of width.
	tr := mkTrace(10000, 1000000) // no branches in range
	for i := 1; i < len(tr); i++ {
		tr[i].Dep1 = 1
	}
	r := Run(DefaultConfig(), tr)
	if r.CPI() < 0.99 {
		t.Fatalf("serial chain CPI = %v, want >= ~1", r.CPI())
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a := run("mcf", 20000, cfg)
	b := run("mcf", 20000, cfg)
	if a != b {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
}

func TestAllBenchmarksComplete(t *testing.T) {
	cfg := DefaultConfig()
	for _, name := range trace.Names() {
		r := run(name, 15000, cfg)
		if r.Instructions != 15000 {
			t.Fatalf("%s committed %d", name, r.Instructions)
		}
		if cpi := r.CPI(); cpi < 0.25 || cpi > 30 {
			t.Fatalf("%s CPI = %v implausible", name, cpi)
		}
	}
}

func TestMispredictionPenaltyScalesWithDepth(t *testing.T) {
	// A trace full of unpredictable branches must get slower as the
	// pipeline deepens.
	tr := mkTrace(20000, 5)
	// Make outcomes pseudo-random (pattern too long for gshare).
	x := uint64(12345)
	for i := range tr {
		if tr[i].Op == trace.Branch {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			taken := x&1 == 0
			tr[i].Taken = taken
			tr[i].Target = tr[i].PC + 4 // target same either way: direction still mispredicts
		}
	}
	shallow := DefaultConfig()
	shallow.PipeDepth = 7
	deep := DefaultConfig()
	deep.PipeDepth = 24
	rs, rd := Run(shallow, tr), Run(deep, tr)
	if rd.CPI() <= rs.CPI()*1.2 {
		t.Fatalf("deep pipe CPI %v not ≫ shallow %v", rd.CPI(), rs.CPI())
	}
}

func TestLargerDL1ReducesCPIForPointerCode(t *testing.T) {
	small := DefaultConfig()
	small.DL1.SizeKB = 8
	big := DefaultConfig()
	big.DL1.SizeKB = 64
	rs := run("twolf", 30000, small)
	rb := run("twolf", 30000, big)
	if rb.CPI() >= rs.CPI() {
		t.Fatalf("64KB DL1 CPI %v not better than 8KB %v", rb.CPI(), rs.CPI())
	}
	if rb.DL1Stats.Misses >= rs.DL1Stats.Misses {
		t.Fatalf("bigger DL1 missed more: %d vs %d", rb.DL1Stats.Misses, rs.DL1Stats.Misses)
	}
}

func TestL2LatencyHurtsMemoryBoundCode(t *testing.T) {
	fast := DefaultConfig()
	fast.L2Lat = 5
	slow := DefaultConfig()
	slow.L2Lat = 20
	rf := run("mcf", 30000, fast)
	rs := run("mcf", 30000, slow)
	if rs.CPI() <= rf.CPI() {
		t.Fatalf("L2 lat 20 CPI %v not worse than lat 5 %v", rs.CPI(), rf.CPI())
	}
}

func TestL2SizeMattersForMcf(t *testing.T) {
	small := DefaultConfig()
	small.L2.SizeKB = 256
	big := DefaultConfig()
	big.L2.SizeKB = 8192
	rs := run("mcf", 30000, small)
	rb := run("mcf", 30000, big)
	if rb.CPI() >= rs.CPI() {
		t.Fatalf("8MB L2 CPI %v not better than 256KB %v", rb.CPI(), rs.CPI())
	}
}

func TestIL1SizeMattersForVortex(t *testing.T) {
	small := DefaultConfig()
	small.IL1.SizeKB = 8
	big := DefaultConfig()
	big.IL1.SizeKB = 64
	rs := run("vortex", 40000, small)
	rb := run("vortex", 40000, big)
	if rb.CPI() >= rs.CPI() {
		t.Fatalf("64KB IL1 CPI %v not better than 8KB %v", rb.CPI(), rs.CPI())
	}
	if rs.IL1Stats.MissRate() < 0.01 {
		t.Fatalf("vortex 8KB IL1 miss rate %v suspiciously low", rs.IL1Stats.MissRate())
	}
}

func TestROBSizeHelpsMemoryParallelism(t *testing.T) {
	small := DefaultConfig()
	small.ROBSize, small.IQSize, small.LSQSize = 24, 12, 12
	big := DefaultConfig()
	big.ROBSize, big.IQSize, big.LSQSize = 128, 64, 64
	rs := run("equake", 30000, small)
	rb := run("equake", 30000, big)
	if rb.CPI() >= rs.CPI() {
		t.Fatalf("128-entry ROB CPI %v not better than 24-entry %v", rb.CPI(), rs.CPI())
	}
}

func TestEquakeMorePredictableThanPerlbmk(t *testing.T) {
	cfg := DefaultConfig()
	re := run("equake", 30000, cfg)
	rp := run("perlbmk", 30000, cfg)
	if re.BPStats.MispredictRate() >= rp.BPStats.MispredictRate() {
		t.Fatalf("equake mispredict rate %v not below perlbmk %v",
			re.BPStats.MispredictRate(), rp.BPStats.MispredictRate())
	}
}

func TestMcfIsMemoryBound(t *testing.T) {
	cfg := DefaultConfig()
	rm := run("mcf", 30000, cfg)
	rc := run("crafty", 30000, cfg)
	if rm.L2Stats.Misses <= rc.L2Stats.Misses {
		t.Fatalf("mcf L2 misses %d not above crafty %d", rm.L2Stats.Misses, rc.L2Stats.Misses)
	}
	if rm.CPI() <= rc.CPI() {
		t.Fatalf("mcf CPI %v not above crafty %v", rm.CPI(), rc.CPI())
	}
}

func TestStoreForwardingHappens(t *testing.T) {
	// store to X immediately followed by load from X, repeatedly.
	n := 5000
	tr := make(trace.Trace, n)
	pc := uint64(0x400000)
	for i := 0; i < n; i++ {
		in := trace.Inst{PC: pc, Op: trace.IntALU}
		switch i % 4 {
		case 1:
			in.Op = trace.Store
			in.Addr = 0x10000000 + uint64((i/4)%8)*8
		case 2:
			in.Op = trace.Load
			in.Addr = 0x10000000 + uint64((i/4)%8)*8
		}
		tr[i] = in
		pc += 4
	}
	r := Run(DefaultConfig(), tr)
	if r.LoadForwards == 0 {
		t.Fatal("no store-to-load forwarding observed")
	}
}

func TestDispatchStallAccounting(t *testing.T) {
	// A tiny ROB with long-latency serialized loads must report ROB or
	// LSQ stalls.
	cfg := DefaultConfig()
	cfg.ROBSize, cfg.IQSize, cfg.LSQSize = 8, 4, 4
	r := run("mcf", 20000, cfg)
	if r.ROBStallCycles+r.IQStallCycles+r.LSQStallCycles == 0 {
		t.Fatal("no dispatch stalls on a tiny window")
	}
}

func TestFromDesignRoundTrip(t *testing.T) {
	d := DefaultConfig()
	dc := FromDesign(designConfigFixture())
	if dc.PipeDepth != 10 || dc.ROBSize != 100 || dc.IQSize != 50 || dc.LSQSize != 40 {
		t.Fatalf("FromDesign core params wrong: %+v", dc)
	}
	if dc.IL1.SizeKB != 16 || dc.DL1.SizeKB != 32 || dc.L2.SizeKB != 1024 {
		t.Fatalf("FromDesign cache params wrong: %+v", dc)
	}
	if dc.DL1Lat != 3 || dc.L2Lat != 9 {
		t.Fatalf("FromDesign latencies wrong: %+v", dc)
	}
	// Fixed context inherited from defaults.
	if dc.FetchWidth != d.FetchWidth || dc.MSHRs != d.MSHRs {
		t.Fatalf("fixed context not inherited")
	}
}

func TestSanitizeFloors(t *testing.T) {
	cfg := Config{}
	cfg.sanitize()
	if cfg.ROBSize < 4 || cfg.IQSize < 2 || cfg.FetchWidth < 1 {
		t.Fatalf("sanitize left invalid config: %+v", cfg)
	}
}

func TestResultStringAndRates(t *testing.T) {
	r := run("crafty", 10000, DefaultConfig())
	if len(r.String()) == 0 {
		t.Fatal("empty Result string")
	}
	if r.MispredictsPerKI() <= 0 {
		t.Fatalf("mispredicts per KI = %v", r.MispredictsPerKI())
	}
	var zero Result
	if zero.CPI() != 0 || zero.IPC() != 0 || zero.MispredictsPerKI() != 0 {
		t.Fatal("zero Result rates must be zero")
	}
}

func TestHeavyMispredictStressWithTinyROB(t *testing.T) {
	// Random branches + tiny structures exercise the mispredict resolve
	// invariant (the branch is always youngest when it resolves).
	cfg := DefaultConfig()
	cfg.ROBSize, cfg.IQSize, cfg.LSQSize = 8, 4, 4
	tr := mkTrace(20000, 4)
	x := uint64(99)
	for i := range tr {
		if tr[i].Op == trace.Branch && tr[i].Target == tr[i].PC+4 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			tr[i].Taken = x&1 == 0
		}
	}
	r := Run(cfg, tr)
	if r.Instructions != 20000 {
		t.Fatalf("committed %d", r.Instructions)
	}
	if r.Mispredicts == 0 {
		t.Fatal("stress trace produced no mispredicts")
	}
}
