// Package cache implements the set-associative cache tag stores used by
// the simulator's L1 instruction, L1 data, and unified L2 caches: LRU
// replacement, write-back with dirty-victim reporting, and hit/miss
// statistics. Timing (hit latencies, miss handling, MSHRs) is the
// concern of the enclosing memory hierarchy, not of this package.
package cache

import "fmt"

// Config sizes one cache.
type Config struct {
	Name      string
	SizeKB    int
	LineBytes int // power of two
	Assoc     int // ways per set
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag     uint64
	lastUse uint64
	valid   bool
	dirty   bool
}

// Cache is a set-associative, write-back, write-allocate cache tag store
// with true-LRU replacement.
type Cache struct {
	cfg       Config
	sets      [][]line
	setShift  uint
	setMask   uint64
	lineShift uint
	tick      uint64
	Stats     Stats
}

// New builds a cache from its configuration. SizeKB, LineBytes, and
// Assoc must describe at least one set; the set count is rounded down to
// a power of two so addresses index with masks.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.Assoc <= 0 {
		cfg.Assoc = 4
	}
	bytes := cfg.SizeKB * 1024
	nsets := bytes / (cfg.LineBytes * cfg.Assoc)
	if nsets < 1 {
		nsets = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= nsets {
		p *= 2
	}
	nsets = p
	c := &Cache{cfg: cfg, sets: make([][]line, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	c.setMask = uint64(nsets - 1)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// index splits an address into set index and tag.
func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.lineShift
	return int(blk & c.setMask), blk >> uint(popcount(c.setMask))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Access looks up addr, allocating on a miss. write marks the line dirty.
// On a miss that evicts a dirty victim, writeback is true and victim is a
// byte address within the evicted line, so the caller can model the
// write-back traffic.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim uint64, writeback bool) {
	c.tick++
	c.Stats.Accesses++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lastUse = c.tick
			if write {
				lines[i].dirty = true
			}
			return true, 0, false
		}
	}
	c.Stats.Misses++
	// Choose the LRU victim (prefer invalid ways).
	vi := 0
	for i := range lines {
		if !lines[i].valid {
			vi = i
			break
		}
		if lines[i].lastUse < lines[vi].lastUse {
			vi = i
		}
	}
	if lines[vi].valid && lines[vi].dirty {
		writeback = true
		victim = c.lineAddr(set, lines[vi].tag)
		c.Stats.Writebacks++
	}
	lines[vi] = line{tag: tag, lastUse: c.tick, valid: true, dirty: write}
	return false, victim, writeback
}

// Fill installs the line containing addr without touching hit/miss
// statistics — the path used by prefetchers, whose fills are not demand
// accesses. It reports an evicted dirty victim like Access. Filling an
// already-resident line only refreshes its LRU position.
func (c *Cache) Fill(addr uint64) (victim uint64, writeback bool) {
	c.tick++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lastUse = c.tick
			return 0, false
		}
	}
	vi := 0
	for i := range lines {
		if !lines[i].valid {
			vi = i
			break
		}
		if lines[i].lastUse < lines[vi].lastUse {
			vi = i
		}
	}
	if lines[vi].valid && lines[vi].dirty {
		writeback = true
		victim = c.lineAddr(set, lines[vi].tag)
		c.Stats.Writebacks++
	}
	lines[vi] = line{tag: tag, lastUse: c.tick, valid: true}
	return victim, writeback
}

// Probe reports whether addr currently hits, without disturbing LRU
// state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// lineAddr reconstructs a byte address from set and tag.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return ((tag << uint(popcount(c.setMask))) | uint64(set)) << c.lineShift
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.lineShift << c.lineShift
}

func (c *Cache) String() string {
	return fmt.Sprintf("%s(%dKB %d-way %dB lines, %d sets)",
		c.cfg.Name, c.cfg.SizeKB, c.cfg.Assoc, c.cfg.LineBytes, len(c.sets))
}
