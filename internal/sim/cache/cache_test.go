package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{Name: "l1", SizeKB: 8, LineBytes: 64, Assoc: 2})
	hit, _, _ := c.Access(0x1000, false)
	if hit {
		t.Fatal("cold access hit")
	}
	hit, _, _ = c.Access(0x1000, false)
	if !hit {
		t.Fatal("second access missed")
	}
	// Same line, different byte.
	hit, _, _ = c.Access(0x103F, false)
	if !hit {
		t.Fatal("same-line access missed")
	}
	// Next line.
	hit, _, _ = c.Access(0x1040, false)
	if hit {
		t.Fatal("next-line access hit")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache; three conflicting lines evict the least recently used.
	c := New(Config{SizeKB: 1, LineBytes: 64, Assoc: 2}) // 8 sets
	setStride := uint64(64 * 8)
	a, b, d := uint64(0), setStride, 2*setStride // all map to set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent
	c.Access(d, false) // evicts b
	if !c.Probe(a) {
		t.Fatal("a evicted despite being MRU")
	}
	if c.Probe(b) {
		t.Fatal("b survived despite being LRU")
	}
	if !c.Probe(d) {
		t.Fatal("d not resident after fill")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(Config{SizeKB: 1, LineBytes: 64, Assoc: 1}) // direct mapped, 16 sets
	setStride := uint64(64 * 16)
	c.Access(0x0, true) // dirty
	_, victim, wb := c.Access(setStride, false)
	if !wb {
		t.Fatal("dirty victim not reported")
	}
	if victim != 0x0 {
		t.Fatalf("victim addr = %#x, want 0x0", victim)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
	// Clean eviction reports no writeback.
	_, _, wb = c.Access(2*setStride, false)
	if wb {
		t.Fatal("clean victim reported as writeback")
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := New(Config{SizeKB: 1, LineBytes: 64, Assoc: 2})
	setStride := uint64(64 * 8)
	c.Access(0, false)
	c.Access(setStride, false)
	before := c.Stats
	for i := 0; i < 10; i++ {
		c.Probe(0)
	}
	if c.Stats != before {
		t.Fatal("Probe changed statistics")
	}
	// Probing 0 ten times must not have refreshed its LRU position:
	// line 0 is still LRU, so a new fill evicts it.
	c.Access(2*setStride, false)
	if c.Probe(0) {
		t.Fatal("Probe refreshed LRU state")
	}
}

func TestLargerCacheNeverMissesMore(t *testing.T) {
	// Property: on any access stream, doubling capacity (same assoc &
	// line) cannot increase misses for LRU (stack inclusion holds per
	// set only, so verify on uniformly random streams statistically).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		small := New(Config{SizeKB: 4, LineBytes: 64, Assoc: 4})
		big := New(Config{SizeKB: 16, LineBytes: 64, Assoc: 4})
		for i := 0; i < 4000; i++ {
			addr := uint64(rng.Intn(64 * 1024))
			small.Access(addr, false)
			big.Access(addr, false)
		}
		return big.Stats.Misses <= small.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set smaller than capacity has zero steady-state misses.
	c := New(Config{SizeKB: 8, LineBytes: 64, Assoc: 4})
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 4*1024; addr += 64 {
			c.Access(addr, false)
		}
	}
	warmMisses := c.Stats.Misses
	for addr := uint64(0); addr < 4*1024; addr += 64 {
		c.Access(addr, false)
	}
	if c.Stats.Misses != warmMisses {
		t.Fatalf("steady-state misses: %d new", c.Stats.Misses-warmMisses)
	}
	if warmMisses != 64 {
		t.Fatalf("warmup misses = %d, want 64 cold misses", warmMisses)
	}
}

func TestStreamingThrashesTinyCache(t *testing.T) {
	c := New(Config{SizeKB: 1, LineBytes: 64, Assoc: 1})
	// Stream 64KB repeatedly: every access a miss after the set wraps.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 64*1024; addr += 64 {
			c.Access(addr, false)
		}
	}
	if c.Stats.MissRate() < 0.99 {
		t.Fatalf("streaming miss rate = %v, want ~1", c.Stats.MissRate())
	}
}

func TestSetCountPowerOfTwo(t *testing.T) {
	for _, kb := range []int{1, 2, 3, 8, 12, 64, 100} {
		c := New(Config{SizeKB: kb, LineBytes: 64, Assoc: 4})
		n := c.Sets()
		if n&(n-1) != 0 || n < 1 {
			t.Fatalf("SizeKB=%d: %d sets not a power of two", kb, n)
		}
	}
}

func TestLineAddrAlignment(t *testing.T) {
	c := New(Config{SizeKB: 8, LineBytes: 64, Assoc: 2})
	if got := c.LineAddr(0x12345); got != 0x12340 {
		t.Fatalf("LineAddr = %#x, want 0x12340", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Config{SizeKB: 8})
	if c.LineBytes() != 64 {
		t.Fatalf("default line = %d", c.LineBytes())
	}
	if c.Config().Assoc != 4 {
		t.Fatalf("default assoc = %d", c.Config().Assoc)
	}
}

func TestFillDoesNotCountAccesses(t *testing.T) {
	c := New(Config{SizeKB: 8, LineBytes: 64, Assoc: 2})
	before := c.Stats
	c.Fill(0x2000)
	if c.Stats.Accesses != before.Accesses || c.Stats.Misses != before.Misses {
		t.Fatalf("Fill changed access stats: %+v", c.Stats)
	}
	if !c.Probe(0x2000) {
		t.Fatal("Fill did not install the line")
	}
	// A demand access to the filled line is a hit.
	hit, _, _ := c.Access(0x2000, false)
	if !hit {
		t.Fatal("filled line missed on demand access")
	}
}

func TestFillReportsDirtyVictim(t *testing.T) {
	c := New(Config{SizeKB: 1, LineBytes: 64, Assoc: 1}) // 16 sets
	c.Access(0x0, true)                                  // dirty
	victim, wb := c.Fill(64 * 16)                        // same set
	if !wb || victim != 0 {
		t.Fatalf("Fill victim = (%#x,%v), want (0,true)", victim, wb)
	}
}
