package sim

// Prefetch configures the optional hardware prefetchers. Both default to
// off, matching the paper's machine description (which lists no
// prefetchers among the modeled structures); the ablation benchmarks
// turn them on to quantify what prefetching would change.
type Prefetch struct {
	// IL1NextLine fetches line N+1 into the instruction cache whenever
	// line N misses (tagged next-line prefetch).
	IL1NextLine bool
	// DL1Stride runs a PC-indexed reference prediction table over load
	// addresses and prefetches ahead on confident strides.
	DL1Stride bool
	// Degree is how many strides ahead the data prefetcher runs
	// (default 1).
	Degree int
}

// rptEntry is one reference-prediction-table row.
type rptEntry struct {
	tag      uint64
	lastAddr uint64
	stride   int64
	conf     uint8 // saturating confidence counter
}

const rptSize = 256 // direct-mapped, power of two

// maybePrefetchData updates the stride predictor for a load at pc/addr
// and issues a prefetch when confident. Prefetched lines are installed
// through the regular MSHR path, so later demand loads merge with the
// in-flight fill; prefetches never steal the last free MSHR.
func (c *cpu) maybePrefetchData(pc, addr uint64) {
	if !c.cfg.Prefetch.DL1Stride {
		return
	}
	idx := (pc >> 2) & (rptSize - 1)
	e := &c.rpt[idx]
	if e.tag != pc {
		*e = rptEntry{tag: pc, lastAddr: addr}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		}
		e.stride = stride
	}
	e.lastAddr = addr
	if e.conf < 2 || e.stride == 0 {
		return
	}
	degree := c.cfg.Prefetch.Degree
	if degree <= 0 {
		degree = 1
	}
	for d := 1; d <= degree; d++ {
		target := uint64(int64(addr) + e.stride*int64(d))
		line := c.dl1.LineAddr(target)
		if c.dl1.Probe(target) || c.lineInFlight(line) {
			continue
		}
		// Leave at least one MSHR for demand misses.
		if len(c.mshrs) >= c.cfg.MSHRs-1 {
			return
		}
		victim, wb := c.dl1.Fill(target)
		if wb {
			c.l2Access(c.now, victim, true)
		}
		fill := c.l2Access(c.now+uint64(c.cfg.DL1Lat), target, false)
		c.mshrs = append(c.mshrs, inflightFill{line: line, done: fill})
		c.res.Prefetches++
	}
}

// lineInFlight reports whether a fill for the line is outstanding.
func (c *cpu) lineInFlight(line uint64) bool {
	for _, f := range c.mshrs {
		if f.line == line && f.done > c.now {
			return true
		}
	}
	return false
}

// maybePrefetchNextLine issues the instruction next-line prefetch after
// an IL1 miss on the line containing pc. The fetched line is installed
// immediately and its memory traffic charged; the front end does not
// wait on it.
func (c *cpu) maybePrefetchNextLine(pc uint64) {
	if !c.cfg.Prefetch.IL1NextLine {
		return
	}
	next := c.il1.LineAddr(pc) + uint64(c.il1.LineBytes())
	if c.il1.Probe(next) {
		return
	}
	victim, wb := c.il1.Fill(next)
	if wb {
		c.l2Access(c.now, victim, true)
	}
	c.l2Access(c.now, next, false)
	c.res.Prefetches++
}
