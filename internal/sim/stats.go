package sim

import (
	"fmt"

	"predperf/internal/sim/branch"
	"predperf/internal/sim/cache"
	"predperf/internal/sim/mem"
	"predperf/internal/trace"
)

// Instruction-class indices for Result.Committed, mirroring trace.Op.
const (
	IntALUClass = int(trace.IntALU)
	IntMulClass = int(trace.IntMul)
	IntDivClass = int(trace.IntDiv)
	FPALUClass  = int(trace.FPALU)
	FPMulClass  = int(trace.FPMul)
	FPDivClass  = int(trace.FPDiv)
	LoadClass   = int(trace.Load)
	StoreClass  = int(trace.Store)
	BranchClass = int(trace.Branch)
	NumClasses  = 9
)

// Result summarizes one simulation run.
type Result struct {
	Cycles       uint64
	Instructions uint64

	Mispredicts uint64 // direction or target mispredictions that flushed

	// Committed counts retired instructions by class (see the *Class
	// constants); it feeds the activity-based power model.
	Committed [NumClasses]uint64

	IL1Stats cache.Stats
	DL1Stats cache.Stats
	L2Stats  cache.Stats
	BPStats  branch.Stats
	MemStats mem.Stats

	// Dispatch-stall accounting: cycles in which dispatch was blocked by
	// a full structure (at most one cause counted per cycle).
	ROBStallCycles uint64
	IQStallCycles  uint64
	LSQStallCycles uint64
	// Fetch-stall accounting: cycles the front end was idle waiting on
	// an I-cache fill or a mispredict redirect.
	FetchStallCycles uint64

	LoadForwards uint64 // loads satisfied by store-to-load forwarding
	Prefetches   uint64 // prefetch fills issued (when prefetchers are on)
}

// CPI returns cycles per committed instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MispredictsPerKI returns mispredictions per thousand instructions.
func (r Result) MispredictsPerKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.Mispredicts) / float64(r.Instructions)
}

func (r Result) String() string {
	return fmt.Sprintf("cycles=%d insts=%d CPI=%.3f il1Miss=%.3f dl1Miss=%.3f l2Miss=%.3f bpMiss=%.3f",
		r.Cycles, r.Instructions, r.CPI(),
		r.IL1Stats.MissRate(), r.DL1Stats.MissRate(), r.L2Stats.MissRate(), r.BPStats.MispredictRate())
}
