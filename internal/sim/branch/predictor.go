// Package branch implements the simulator's branch direction and target
// predictors: a McFarling-style tournament of a bimodal (per-PC) 2-bit
// predictor and a two-level local-history predictor (per-branch history
// indexing a hashed pattern table), arbitrated by a per-PC chooser, plus
// a direct-mapped branch target buffer and a return address stack. The
// bimodal component learns each branch's bias within a few visits; the
// local component captures periodic behaviour (loop trip counts, guard
// patterns); the chooser picks whichever has been more accurate for that
// branch.
package branch

// Config sizes the predictor.
type Config struct {
	BimodalBits   int // log2(bimodal table entries)
	LocalHistBits int // local history length in bits
	LocalBits     int // log2(local pattern table entries)
	LocalRows     int // local history table entries (power of two)
	BTBEntries    int // power of two
	RASEntries    int
}

// DefaultConfig is the fixed predictor used across the design space (the
// paper varies nine other parameters; the predictor is held constant).
func DefaultConfig() Config {
	return Config{BimodalBits: 12, LocalHistBits: 8, LocalBits: 15, LocalRows: 16384, BTBEntries: 4096, RASEntries: 16}
}

// Stats counts predictor events.
type Stats struct {
	Lookups        uint64
	DirMispredicts uint64
	BTBMisses      uint64
}

// MispredictRate returns direction mispredictions per lookup.
func (s Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.DirMispredicts) / float64(s.Lookups)
}

// Checkpoint captures the speculative predictor state for one predicted
// branch, so the pipeline can train with prediction-time indices and
// repair the speculative local history after a misprediction flush.
type Checkpoint struct {
	LocalHist   uint16
	BimodalPred bool
	LocalPred   bool
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// Predictor is the tournament branch predictor. The local history is
// updated speculatively at prediction time; Restore repairs it on a
// flush.
type Predictor struct {
	cfg Config

	bim     []uint8 // bimodal 2-bit counters, PC-indexed
	bimMask uint64

	lht      []uint16 // local history table, PC-indexed
	lhtMask  uint64
	histMask uint16  // keeps LocalHistBits of history
	lpht     []uint8 // local pattern table, indexed by hash(history, PC)
	lmask    uint64

	choice []uint8 // 2-bit chooser, PC-indexed: ≥2 → use local
	chMask uint64

	btb     []btbEntry
	btbMask uint64
	ras     []uint64
	rasTop  int

	Stats Stats
}

// New builds a predictor; zero config fields take defaults.
func New(cfg Config) *Predictor {
	d := DefaultConfig()
	if cfg.BimodalBits <= 0 {
		cfg.BimodalBits = d.BimodalBits
	}
	if cfg.LocalHistBits <= 0 {
		cfg.LocalHistBits = d.LocalHistBits
	}
	if cfg.LocalHistBits > 16 {
		cfg.LocalHistBits = 16
	}
	if cfg.LocalBits <= 0 {
		cfg.LocalBits = d.LocalBits
	}
	if cfg.LocalRows <= 0 {
		cfg.LocalRows = d.LocalRows
	}
	if cfg.BTBEntries <= 0 {
		cfg.BTBEntries = d.BTBEntries
	}
	if cfg.RASEntries <= 0 {
		cfg.RASEntries = d.RASEntries
	}
	p := &Predictor{cfg: cfg}
	b := 1 << cfg.BimodalBits
	p.bim = make([]uint8, b)
	for i := range p.bim {
		p.bim[i] = 1 // weakly not-taken
	}
	p.bimMask = uint64(b - 1)
	rows := pow2(cfg.LocalRows)
	p.lht = make([]uint16, rows)
	p.lhtMask = uint64(rows - 1)
	p.histMask = uint16(1<<cfg.LocalHistBits) - 1
	l := 1 << cfg.LocalBits
	p.lpht = make([]uint8, l)
	for i := range p.lpht {
		p.lpht[i] = 1
	}
	p.lmask = uint64(l - 1)
	p.choice = make([]uint8, b)
	for i := range p.choice {
		p.choice[i] = 1 // weakly prefer bimodal until local proves itself
	}
	p.chMask = uint64(b - 1)
	nb := pow2(cfg.BTBEntries)
	p.btb = make([]btbEntry, nb)
	p.btbMask = uint64(nb - 1)
	p.ras = make([]uint64, cfg.RASEntries)
	return p
}

func pow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// lIdx indexes the local pattern table by per-branch history hashed with
// the PC, so branches with coincidentally equal histories do not share
// pattern entries.
func (p *Predictor) lIdx(pc uint64, hist uint16) uint64 {
	return (uint64(hist&p.histMask) ^ ((pc >> 2) * 0x9E3779B1)) & p.lmask
}

// PredictDirection returns the tournament's predicted direction for the
// branch at pc, speculatively updating the local history, and the
// checkpoint the pipeline must hold for Update/Restore.
func (p *Predictor) PredictDirection(pc uint64) (bool, Checkpoint) {
	p.Stats.Lookups++
	cp := Checkpoint{}
	cp.BimodalPred = p.bim[(pc>>2)&p.bimMask] >= 2
	lRow := (pc >> 2) & p.lhtMask
	cp.LocalHist = p.lht[lRow]
	cp.LocalPred = p.lpht[p.lIdx(pc, cp.LocalHist)] >= 2

	taken := cp.BimodalPred
	if p.choice[(pc>>2)&p.chMask] >= 2 {
		taken = cp.LocalPred
	}
	p.lht[lRow] = ((cp.LocalHist << 1) | uint16(b2u(taken))) & p.histMask
	return taken, cp
}

// Update trains the component tables with the resolved outcome, using
// prediction-time indices from the checkpoint.
func (p *Predictor) Update(pc uint64, cp Checkpoint, taken bool) {
	bump(&p.bim[(pc>>2)&p.bimMask], taken)
	bump(&p.lpht[p.lIdx(pc, cp.LocalHist)], taken)
	// Chooser trains only when the components disagree; it moves toward
	// the component that was right.
	if cp.BimodalPred != cp.LocalPred {
		bump(&p.choice[(pc>>2)&p.chMask], cp.LocalPred == taken)
	}
}

func bump(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// RecordMispredict counts a direction misprediction.
func (p *Predictor) RecordMispredict() { p.Stats.DirMispredicts++ }

// Restore rewinds the speculative local history to the checkpoint and
// shifts in the corrected outcome of the mispredicted branch.
func (p *Predictor) Restore(pc uint64, cp Checkpoint, actualTaken bool) {
	lRow := (pc >> 2) & p.lhtMask
	p.lht[lRow] = ((cp.LocalHist << 1) | uint16(b2u(actualTaken))) & p.histMask
}

// PredictTarget looks up the BTB. ok is false on a BTB miss, in which
// case a taken prediction cannot be followed and the front end must
// treat the branch as mispredicted-target.
func (p *Predictor) PredictTarget(pc uint64) (target uint64, ok bool) {
	e := p.btb[(pc>>2)&p.btbMask]
	if e.valid && e.tag == pc {
		return e.target, true
	}
	p.Stats.BTBMisses++
	return 0, false
}

// UpdateTarget installs the resolved target of a taken branch.
func (p *Predictor) UpdateTarget(pc, target uint64) {
	p.btb[(pc>>2)&p.btbMask] = btbEntry{tag: pc, target: target, valid: true}
}

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(ret uint64) {
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	p.ras[p.rasTop] = ret
}

// PopRAS predicts a return target.
func (p *Predictor) PopRAS() uint64 {
	v := p.ras[p.rasTop]
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
