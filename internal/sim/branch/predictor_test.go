package branch

import (
	"math/rand"
	"testing"
)

// train runs predict/update cycles for a single branch with the given
// outcome sequence and returns the number of correct predictions.
func train(p *Predictor, pc uint64, outcomes []bool) int {
	correct := 0
	for _, actual := range outcomes {
		pred, cp := p.PredictDirection(pc)
		if pred == actual {
			correct++
		} else {
			p.RecordMispredict()
			p.Restore(pc, cp, actual)
		}
		p.Update(pc, cp, actual)
	}
	return correct
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(Config{})
	outcomes := make([]bool, 500)
	for i := range outcomes {
		outcomes[i] = true
	}
	if correct := train(p, 0x400000, outcomes); correct < 470 {
		t.Fatalf("always-taken accuracy %d/500", correct)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	// T,N,T,N... is perfectly predictable from local history.
	p := New(Config{})
	outcomes := make([]bool, 400)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	if correct := train(p, 0x400100, outcomes); correct < 360 {
		t.Fatalf("alternating accuracy %d/400", correct)
	}
}

func TestLearnsLongerPeriodicPattern(t *testing.T) {
	// Period-5 run pattern TTTNN: local history (10 bits) captures it.
	p := New(Config{})
	outcomes := make([]bool, 1000)
	for i := range outcomes {
		outcomes[i] = i%5 < 3
	}
	if correct := train(p, 0x400140, outcomes); correct < 900 {
		t.Fatalf("period-5 accuracy %d/1000", correct)
	}
}

func TestRandomBranchNearChanceOrBetter(t *testing.T) {
	p := New(Config{})
	rng := rand.New(rand.NewSource(1))
	outcomes := make([]bool, 2000)
	for i := range outcomes {
		outcomes[i] = rng.Intn(2) == 0
	}
	correct := train(p, 0x400200, outcomes)
	frac := float64(correct) / float64(len(outcomes))
	if frac < 0.3 {
		t.Fatalf("random-branch accuracy %v below chance region", frac)
	}
}

func TestBiasedBranchTracksBias(t *testing.T) {
	p := New(Config{})
	rng := rand.New(rand.NewSource(2))
	outcomes := make([]bool, 2000)
	for i := range outcomes {
		outcomes[i] = rng.Float64() < 0.9
	}
	if correct := train(p, 0x400300, outcomes); float64(correct)/float64(len(outcomes)) < 0.8 {
		t.Fatalf("90%%-biased accuracy %d/2000 too low", correct)
	}
}

func TestPeriodicPatternRobustToGlobalNoise(t *testing.T) {
	// Interleave a periodic branch with many random branches: the local
	// component must keep the periodic branch predictable.
	p := New(Config{})
	rng := rand.New(rand.NewSource(3))
	correct, total := 0, 0
	phase := 0
	for i := 0; i < 4000; i++ {
		// Noise branch at a rotating PC.
		npc := 0x500000 + uint64(rng.Intn(64))*4
		actual := rng.Intn(2) == 0
		pred, cp := p.PredictDirection(npc)
		if pred != actual {
			p.Restore(npc, cp, actual)
		}
		p.Update(npc, cp, actual)

		// Periodic branch of interest: TTN repeating.
		actual = phase%3 < 2
		phase++
		pred, cp = p.PredictDirection(0x400400)
		if pred == actual {
			correct++
		} else {
			p.Restore(0x400400, cp, actual)
		}
		p.Update(0x400400, cp, actual)
		total++
	}
	if frac := float64(correct) / float64(total); frac < 0.85 {
		t.Fatalf("periodic-under-noise accuracy %v", frac)
	}
}

func TestBTB(t *testing.T) {
	p := New(Config{})
	if _, ok := p.PredictTarget(0x400000); ok {
		t.Fatal("cold BTB hit")
	}
	p.UpdateTarget(0x400000, 0x400800)
	tgt, ok := p.PredictTarget(0x400000)
	if !ok || tgt != 0x400800 {
		t.Fatalf("BTB = (%#x,%v), want (0x400800,true)", tgt, ok)
	}
	conflict := 0x400000 + uint64(len(p.btb))*4
	if _, ok := p.PredictTarget(conflict); ok {
		t.Fatal("conflicting PC hit with wrong tag")
	}
}

func TestRAS(t *testing.T) {
	p := New(Config{RASEntries: 4})
	p.PushRAS(0x100)
	p.PushRAS(0x200)
	if got := p.PopRAS(); got != 0x200 {
		t.Fatalf("PopRAS = %#x, want 0x200", got)
	}
	if got := p.PopRAS(); got != 0x100 {
		t.Fatalf("PopRAS = %#x, want 0x100", got)
	}
}

func TestCheckpointRestoreRepairsHistory(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 5; i++ {
		pc := 0x400000 + uint64(i*4)
		_, cp := p.PredictDirection(pc)
		p.Update(pc, cp, true)
		p.Restore(pc, cp, true)
	}
	// A wrong prediction followed by Restore must leave the local
	// history at checkpoint<<1|actual.
	_, cp := p.PredictDirection(0x400400)
	p.Restore(0x400400, cp, false)
	lRow := (uint64(0x400400) >> 2) & p.lhtMask
	if p.lht[lRow] != cp.LocalHist<<1 {
		t.Fatalf("restored local history %#x, want %#x", p.lht[lRow], cp.LocalHist<<1)
	}
}

func TestStatsCount(t *testing.T) {
	p := New(Config{})
	p.PredictDirection(0x10)
	p.PredictDirection(0x20)
	p.RecordMispredict()
	if p.Stats.Lookups != 2 || p.Stats.DirMispredicts != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	if p.Stats.MispredictRate() != 0.5 {
		t.Fatalf("rate = %v", p.Stats.MispredictRate())
	}
}

func TestDistinctBranchesDoNotAliasBadly(t *testing.T) {
	p := New(Config{})
	a, b := uint64(0x400000), uint64(0x500000)
	correctA, correctB := 0, 0
	for i := 0; i < 200; i++ {
		pred, cp := p.PredictDirection(a)
		if pred {
			correctA++
		} else {
			p.Restore(a, cp, true)
		}
		p.Update(a, cp, true)

		pred, cp = p.PredictDirection(b)
		if !pred {
			correctB++
		} else {
			p.Restore(b, cp, false)
		}
		p.Update(b, cp, false)
	}
	if correctA < 180 || correctB < 180 {
		t.Fatalf("aliasing hurt accuracy: %d, %d of 200", correctA, correctB)
	}
}
