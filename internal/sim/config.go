// Package sim implements the detailed superscalar processor simulator of
// §3: a trace-driven, pipelined, multiple-issue, dynamically scheduled,
// speculative-execution core. It models the performance-critical
// structures the paper lists — the pipeline (depth-parameterized
// front end), reorder buffer, issue queue, load/store queue, functional
// units, branch direction and target prediction, the L1I/L1D/L2 cache
// hierarchy with MSHRs, DRAM device timing, queuing at the memory
// controller, and contention for the memory bus.
package sim

import (
	"predperf/internal/design"
	"predperf/internal/sim/branch"
	"predperf/internal/sim/cache"
	"predperf/internal/sim/mem"
)

// Config fully describes one simulated machine. The nine Table 1
// parameters arrive via FromDesign; the remaining fields are the fixed
// machine context held constant across the design space.
type Config struct {
	// Design-space parameters (Table 1).
	PipeDepth int // front-end depth: fetch→dispatch latency and mispredict refill
	ROBSize   int
	IQSize    int
	LSQSize   int
	DL1Lat    int // L1 data hit latency
	L2Lat     int // unified L2 hit latency

	IL1, DL1, L2 cache.Config

	// Fixed core parameters.
	FetchWidth  int
	IssueWidth  int
	CommitWidth int

	IntALUs  int // pipelined integer ALUs (also branches)
	IntMults int // pipelined integer multiplier ports
	FPUnits  int // pipelined FP adder/multiplier ports
	MemPorts int // cache ports for loads/stores
	MSHRs    int // outstanding L1D misses

	Branch   branch.Config
	Mem      mem.Config
	Prefetch Prefetch // optional prefetchers; off by default

	// WarmupInsts is the number of leading committed instructions whose
	// statistics are discarded: caches, predictors, and DRAM state stay
	// warm, but cycle and event counting restarts. This stands in for
	// the paper's run-to-completion methodology on our finite traces.
	WarmupInsts int
}

// Latencies of the functional units, in cycles.
const (
	latIntALU = 1
	latIntMul = 3
	latIntDiv = 20 // unpipelined
	latFPALU  = 3
	latFPMul  = 5
	latFPDiv  = 16 // unpipelined
	latBranch = 1
	latStore  = 1 // address generation; data written at commit
)

// DefaultConfig returns the fixed machine context with mid-range values
// for the design parameters.
func DefaultConfig() Config {
	c := Config{
		PipeDepth: 12, ROBSize: 64, IQSize: 32, LSQSize: 32,
		DL1Lat: 2, L2Lat: 12,
		FetchWidth: 4, IssueWidth: 4, CommitWidth: 4,
		IntALUs: 4, IntMults: 1, FPUnits: 2, MemPorts: 2, MSHRs: 8,
		Branch: branch.DefaultConfig(),
		Mem:    mem.DefaultConfig(),
	}
	c.IL1 = cache.Config{Name: "il1", SizeKB: 32, LineBytes: 64, Assoc: 2}
	c.DL1 = cache.Config{Name: "dl1", SizeKB: 32, LineBytes: 64, Assoc: 2}
	c.L2 = cache.Config{Name: "l2", SizeKB: 2048, LineBytes: 64, Assoc: 8}
	return c
}

// FromDesign maps a decoded design point onto a full machine
// configuration, filling the fixed context from DefaultConfig.
func FromDesign(d design.Config) Config {
	c := DefaultConfig()
	c.PipeDepth = d.PipeDepth
	c.ROBSize = d.ROBSize
	c.IQSize = d.IQSize
	c.LSQSize = d.LSQSize
	c.DL1Lat = d.DL1Lat
	c.L2Lat = d.L2Lat
	c.IL1.SizeKB = d.IL1SizeKB
	c.DL1.SizeKB = d.DL1SizeKB
	c.L2.SizeKB = d.L2SizeKB
	return c
}

// sanitize applies floors so a pathological configuration cannot wedge
// the pipeline model.
func (c *Config) sanitize() {
	min := func(p *int, v int) {
		if *p < v {
			*p = v
		}
	}
	min(&c.PipeDepth, 1)
	min(&c.ROBSize, 4)
	min(&c.IQSize, 2)
	min(&c.LSQSize, 2)
	min(&c.DL1Lat, 1)
	min(&c.L2Lat, 1)
	min(&c.FetchWidth, 1)
	min(&c.IssueWidth, 1)
	min(&c.CommitWidth, 1)
	min(&c.IntALUs, 1)
	min(&c.IntMults, 1)
	min(&c.FPUnits, 1)
	min(&c.MemPorts, 1)
	min(&c.MSHRs, 1)
}
