package sim

import (
	"testing"

	"predperf/internal/trace"
)

// strideTrace: a loop of loads marching through memory with a fixed
// stride. When chained, each load depends on the previous one, so the
// demand stream has no memory-level parallelism of its own and a stride
// prefetcher is the only way to overlap the misses.
func strideTrace(n int, stride uint64, chained bool) trace.Trace {
	tr := make(trace.Trace, n)
	base := uint64(0x400000)
	const loopInsts = 64
	addr := uint64(0x10000000)
	lastLoad := -1
	for i := range tr {
		pos := i % loopInsts
		pc := base + uint64(4*pos)
		in := trace.Inst{PC: pc, Op: trace.IntALU}
		switch {
		case pos == loopInsts-1:
			in.Op = trace.Branch
			in.Taken = true
			in.Target = base
		case pos%4 == 1:
			in.Op = trace.Load
			in.Addr = addr
			addr += stride
			if chained && lastLoad >= 0 && i-lastLoad <= 64 {
				in.Dep1 = int32(i - lastLoad)
			}
			lastLoad = i
		}
		tr[i] = in
	}
	return tr
}

func TestStridePrefetchHelpsStreaming(t *testing.T) {
	off := DefaultConfig()
	off.L2.SizeKB = 256
	on := off
	on.Prefetch = Prefetch{DL1Stride: true, Degree: 4}
	tr := strideTrace(30000, 64, true) // serialized: prefetch is the only MLP source
	roff, ron := Run(off, tr), Run(on, tr)
	if ron.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	if ron.CPI() >= roff.CPI()*0.9 {
		t.Fatalf("stride prefetch CPI %v not clearly better than %v", ron.CPI(), roff.CPI())
	}
}

func TestPrefetchOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	tr := strideTrace(10000, 64, false)
	r := Run(cfg, tr)
	if r.Prefetches != 0 {
		t.Fatalf("default config issued %d prefetches", r.Prefetches)
	}
}

func TestPrefetchHarmlessOnRandomAccess(t *testing.T) {
	off := DefaultConfig()
	on := off
	on.Prefetch = Prefetch{DL1Stride: true, Degree: 1}
	tr := memTrace(20000, 16<<20, 0.3) // random addresses: no stable stride
	roff, ron := Run(off, tr), Run(on, tr)
	// Within 10%: random access gains nothing but must not fall apart.
	if ron.CPI() > roff.CPI()*1.1 {
		t.Fatalf("prefetch hurt random access badly: %v vs %v", ron.CPI(), roff.CPI())
	}
}

func TestNextLinePrefetchHelpsSequentialCode(t *testing.T) {
	// A large, sequentially-walked code footprint with a cold I-cache.
	n := 40000
	tr := make(trace.Trace, n)
	base := uint64(0x400000)
	const codeInsts = 8192 // 32KB of code, looped
	for i := range tr {
		pos := i % codeInsts
		pc := base + uint64(4*pos)
		in := trace.Inst{PC: pc, Op: trace.IntALU}
		if pos == codeInsts-1 {
			in.Op = trace.Branch
			in.Taken = true
			in.Target = base
		}
		tr[i] = in
	}
	off := DefaultConfig()
	off.IL1.SizeKB = 8 // forces streaming through the I-cache
	on := off
	on.Prefetch = Prefetch{IL1NextLine: true}
	roff, ron := Run(off, tr), Run(on, tr)
	if ron.Prefetches == 0 {
		t.Fatal("no next-line prefetches issued")
	}
	if ron.IL1Stats.Misses >= roff.IL1Stats.Misses {
		t.Fatalf("next-line prefetch did not cut IL1 misses: %d vs %d",
			ron.IL1Stats.Misses, roff.IL1Stats.Misses)
	}
	if ron.CPI() >= roff.CPI() {
		t.Fatalf("next-line prefetch CPI %v not better than %v", ron.CPI(), roff.CPI())
	}
}

func TestPrefetchLeavesLastMSHRForDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 2
	cfg.Prefetch = Prefetch{DL1Stride: true, Degree: 4}
	tr := strideTrace(20000, 64, false)
	r := Run(cfg, tr)
	if r.Instructions != 20000 {
		t.Fatalf("committed %d", r.Instructions)
	}
	// With degree 4 but only 2 MSHRs, prefetches must be throttled, not
	// starve demand loads (run completes with sane CPI).
	if r.CPI() > 50 {
		t.Fatalf("CPI %v: prefetches starved demand misses", r.CPI())
	}
}
