package sim

import "math"

// PowerModel holds the activity-based energy coefficients used to
// estimate dynamic and static energy from a run's event counts — the
// §6 extension ("similar models can be developed for other metrics such
// as power consumption"). Energies are in picojoules; the model is a
// simple CACTI-flavored fit: array access energy grows with the square
// root of capacity, leakage grows linearly with storage, and pipeline
// latch energy grows with depth.
type PowerModel struct {
	// Per-committed-instruction execution energies by class.
	ALUPJ, MulPJ, DivPJ, FPPJ, FPMulPJ, FPDivPJ float64

	// Cache access energy: AccessPJ(sizeKB) = Base + Scale*sqrt(sizeKB).
	L1BasePJ, L1ScalePJ float64
	L2BasePJ, L2ScalePJ float64

	DRAMAccessPJ float64 // per line transferred
	BPredictPJ   float64 // per direction lookup
	LatchPJ      float64 // per instruction per pipeline stage
	FlushPJ      float64 // per squashed fetch slot on a misprediction

	// Leakage per cycle: LeakBasePJ + LeakEntryPJ·(ROB+IQ+LSQ entries)
	// + LeakKBPJ·(total cache KB).
	LeakBasePJ, LeakEntryPJ, LeakKBPJ float64
}

// DefaultPowerModel returns coefficients loosely calibrated to a ~2 GHz
// 90 nm-era core (total power landing in the 10–60 W range across the
// design space).
func DefaultPowerModel() PowerModel {
	return PowerModel{
		ALUPJ: 300, MulPJ: 1000, DivPJ: 3200, FPPJ: 1100, FPMulPJ: 1700, FPDivPJ: 4500,
		L1BasePJ: 200, L1ScalePJ: 60,
		L2BasePJ: 800, L2ScalePJ: 150,
		DRAMAccessPJ: 25000,
		BPredictPJ:   100,
		LatchPJ:      60,
		FlushPJ:      150,
		LeakBasePJ:   4000,
		LeakEntryPJ:  8,
		LeakKBPJ:     2,
	}
}

// cacheAccessPJ is the per-access energy of an array of the given size.
func accessPJ(base, scale float64, sizeKB int) float64 {
	return base + scale*math.Sqrt(float64(sizeKB))
}

// Energy estimates the total energy of a run in picojoules from its
// statistics and the machine configuration.
func (p PowerModel) Energy(cfg Config, r Result) float64 {
	var e float64

	// Execution energy by committed class.
	e += p.ALUPJ * float64(r.Committed[IntALUClass]+r.Committed[BranchClass])
	e += p.MulPJ * float64(r.Committed[IntMulClass])
	e += p.DivPJ * float64(r.Committed[IntDivClass])
	e += p.FPPJ * float64(r.Committed[FPALUClass])
	e += p.FPMulPJ * float64(r.Committed[FPMulClass])
	e += p.FPDivPJ * float64(r.Committed[FPDivClass])

	// Memory hierarchy.
	e += accessPJ(p.L1BasePJ, p.L1ScalePJ, cfg.IL1.SizeKB) * float64(r.IL1Stats.Accesses)
	e += accessPJ(p.L1BasePJ, p.L1ScalePJ, cfg.DL1.SizeKB) * float64(r.DL1Stats.Accesses)
	e += accessPJ(p.L2BasePJ, p.L2ScalePJ, cfg.L2.SizeKB) * float64(r.L2Stats.Accesses)
	e += p.DRAMAccessPJ * float64(r.MemStats.Requests)

	// Front end: prediction lookups, pipeline latches, flush waste.
	e += p.BPredictPJ * float64(r.BPStats.Lookups)
	e += p.LatchPJ * float64(cfg.PipeDepth) * float64(r.Instructions)
	e += p.FlushPJ * float64(r.Mispredicts) * float64(cfg.PipeDepth*cfg.FetchWidth)

	// Leakage.
	entries := float64(cfg.ROBSize + cfg.IQSize + cfg.LSQSize)
	kb := float64(cfg.IL1.SizeKB + cfg.DL1.SizeKB + cfg.L2.SizeKB)
	e += (p.LeakBasePJ + p.LeakEntryPJ*entries + p.LeakKBPJ*kb) * float64(r.Cycles)

	return e
}

// Metrics derived from a run's energy estimate.

// EnergyPJ returns the default power model's total energy estimate.
func (r Result) EnergyPJ(cfg Config) float64 {
	return DefaultPowerModel().Energy(cfg, r)
}

// EPI returns energy per committed instruction, in picojoules.
func (r Result) EPI(cfg Config) float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.EnergyPJ(cfg) / float64(r.Instructions)
}

// AvgPowerW returns average power in watts at the given core frequency.
func (r Result) AvgPowerW(cfg Config, freqGHz float64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	perCycle := r.EnergyPJ(cfg) / float64(r.Cycles) // pJ per cycle
	return perCycle * freqGHz / 1000                // pJ/cycle · cycles/ns → W
}

// EDP returns the energy-delay product per instruction (pJ·cycles), the
// standard efficiency metric for power-performance tradeoff studies.
func (r Result) EDP(cfg Config) float64 {
	return r.EPI(cfg) * r.CPI()
}
