package sim

import "predperf/internal/design"

// designConfigFixture is a mid-range decoded design point used by the
// FromDesign mapping test.
func designConfigFixture() design.Config {
	return design.Config{
		PipeDepth: 10, ROBSize: 100, IQSize: 50, LSQSize: 40,
		L2SizeKB: 1024, L2Lat: 9, IL1SizeKB: 16, DL1SizeKB: 32, DL1Lat: 3,
	}
}
