package sim

import (
	"testing"

	"predperf/internal/trace"
)

func powerRun(t *testing.T, name string, mod func(*Config)) (Config, Result) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.WarmupInsts = 10000
	if mod != nil {
		mod(&cfg)
	}
	tr, err := trace.Cached(name, 60000)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, Run(cfg, tr)
}

func TestEnergyPositiveAndDecomposes(t *testing.T) {
	cfg, r := powerRun(t, "crafty", nil)
	e := r.EnergyPJ(cfg)
	if e <= 0 {
		t.Fatalf("energy = %v", e)
	}
	if r.EPI(cfg) <= 0 || r.EDP(cfg) <= 0 {
		t.Fatalf("EPI/EDP non-positive: %v %v", r.EPI(cfg), r.EDP(cfg))
	}
	// Committed class counts must sum to the instruction count.
	var sum uint64
	for _, c := range r.Committed {
		sum += c
	}
	if sum != r.Instructions {
		t.Fatalf("committed classes sum to %d, want %d", sum, r.Instructions)
	}
}

func TestPowerInPlausibleRange(t *testing.T) {
	cfg, r := powerRun(t, "equake", nil)
	w := r.AvgPowerW(cfg, 2.0)
	if w < 1 || w > 200 {
		t.Fatalf("average power %v W implausible for a 2 GHz core", w)
	}
}

func TestBiggerCachesCostMoreEnergyPerAccess(t *testing.T) {
	cfgS, rS := powerRun(t, "crafty", func(c *Config) { c.L2.SizeKB = 256 })
	cfgB, rB := powerRun(t, "crafty", func(c *Config) { c.L2.SizeKB = 8192 })
	// Normalize per instruction; the 8MB L2 has higher access energy and
	// far more leakage, so EPI must rise even though it may run faster.
	if rB.EPI(cfgB) <= rS.EPI(cfgS) {
		t.Fatalf("8MB L2 EPI %v not above 256KB %v", rB.EPI(cfgB), rS.EPI(cfgS))
	}
}

func TestDeeperPipeBurnsMoreEnergy(t *testing.T) {
	cfgS, rS := powerRun(t, "twolf", func(c *Config) { c.PipeDepth = 7 })
	cfgD, rD := powerRun(t, "twolf", func(c *Config) { c.PipeDepth = 24 })
	if rD.EPI(cfgD) <= rS.EPI(cfgS) {
		t.Fatalf("deep pipe EPI %v not above shallow %v", rD.EPI(cfgD), rS.EPI(cfgS))
	}
}

func TestFPWorkloadBurnsMoreFPEnergy(t *testing.T) {
	cfg, rFP := powerRun(t, "ammp", nil)
	_, rInt := powerRun(t, "crafty", nil)
	fpOps := func(r Result) uint64 {
		return r.Committed[FPALUClass] + r.Committed[FPMulClass] + r.Committed[FPDivClass]
	}
	if fpOps(rFP) <= fpOps(rInt)*2 {
		t.Fatalf("ammp FP ops %d not ≫ crafty %d", fpOps(rFP), fpOps(rInt))
	}
	_ = cfg
}

func TestEDPTradesOffCorrectly(t *testing.T) {
	// A slightly smaller, faster design should win EDP against a
	// maximally provisioned one on a compute-bound workload.
	cfgBig, rBig := powerRun(t, "crafty", func(c *Config) {
		c.L2.SizeKB = 8192
	})
	cfgMid, rMid := powerRun(t, "crafty", func(c *Config) {
		c.L2.SizeKB = 1024
	})
	// crafty's working set fits in 1MB; the 8MB L2 pays leakage+access
	// energy for nothing measurable.
	if rBig.EDP(cfgBig) <= rMid.EDP(cfgMid) {
		t.Fatalf("8MB EDP %v not above 1MB %v for cache-resident workload",
			rBig.EDP(cfgBig), rMid.EDP(cfgMid))
	}
}

func TestZeroRunEnergy(t *testing.T) {
	var r Result
	cfg := DefaultConfig()
	if r.EPI(cfg) != 0 || r.AvgPowerW(cfg, 2.0) != 0 {
		t.Fatal("zero-run metrics must be zero")
	}
}
