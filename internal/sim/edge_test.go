package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predperf/internal/sim/mem"
	"predperf/internal/trace"
)

// memTrace builds a loop of independent loads spread over `footprint`
// bytes with the given fraction of loads.
func memTrace(n int, footprint uint64, loadFrac float64) trace.Trace {
	tr := make(trace.Trace, n)
	base := uint64(0x400000)
	const loopInsts = 128
	x := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := range tr {
		pos := i % loopInsts
		pc := base + uint64(4*pos)
		in := trace.Inst{PC: pc, Op: trace.IntALU}
		if pos == loopInsts-1 {
			in.Op = trace.Branch
			in.Taken = true
			in.Target = base
		} else if float64(next()%1000)/1000 < loadFrac {
			in.Op = trace.Load
			in.Addr = 0x10000000 + (next()%footprint)&^7
		}
		tr[i] = in
	}
	return tr
}

func TestEventWheelOverflowLongLatencies(t *testing.T) {
	// DRAM latencies beyond the 32k-cycle event wheel must go through
	// the overflow map without losing completions.
	cfg := DefaultConfig()
	cfg.Mem = mem.Config{TCAS: 40000, TRCD: 100, TRP: 100, BusCycles: 8, Banks: 8, RowBytes: 2048, QueueDepth: 16}
	cfg.L2.SizeKB = 256
	tr := memTrace(3000, 64<<20, 0.3) // misses everywhere
	r := Run(cfg, tr)
	if r.Instructions != 3000 {
		t.Fatalf("committed %d", r.Instructions)
	}
	if r.CPI() < 10 {
		t.Fatalf("CPI %v suspiciously low for 40k-cycle DRAM", r.CPI())
	}
}

func TestMSHRLimitThrottlesParallelism(t *testing.T) {
	few := DefaultConfig()
	few.MSHRs = 1
	many := DefaultConfig()
	many.MSHRs = 16
	tr := memTrace(20000, 16<<20, 0.35)
	rf, rm := Run(few, tr), Run(many, tr)
	if rm.CPI() >= rf.CPI() {
		t.Fatalf("16 MSHRs CPI %v not better than 1 MSHR %v", rm.CPI(), rf.CPI())
	}
}

func TestCommitWidthBoundsIPC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CommitWidth = 1
	tr := mkTrace(10000, 16)
	r := Run(cfg, tr)
	if r.IPC() > 1.0001 {
		t.Fatalf("IPC %v exceeds commit width 1", r.IPC())
	}
}

func TestFetchWidthBoundsIPC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchWidth = 2
	tr := mkTrace(10000, 16)
	r := Run(cfg, tr)
	if r.IPC() > 2.0001 {
		t.Fatalf("IPC %v exceeds fetch width 2", r.IPC())
	}
}

func TestLSQFullStallsDispatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LSQSize = 2
	cfg.Mem = mem.Config{TCAS: 500, TRCD: 100, TRP: 100, BusCycles: 8, Banks: 8, RowBytes: 2048, QueueDepth: 16}
	cfg.L2.SizeKB = 256
	tr := memTrace(10000, 64<<20, 0.4)
	r := Run(cfg, tr)
	if r.LSQStallCycles == 0 {
		t.Fatal("no LSQ stalls with a 2-entry LSQ under heavy misses")
	}
}

func TestWarmupReducesColdMissInflation(t *testing.T) {
	cfg := DefaultConfig()
	tr, _ := trace.Cached("crafty", 100000)
	cold := Run(cfg, tr)
	warm := cfg
	warm.WarmupInsts = 30000
	rw := Run(warm, tr)
	if rw.L2Stats.MissRate() >= cold.L2Stats.MissRate() {
		t.Fatalf("warmed L2 miss rate %v not below cold %v",
			rw.L2Stats.MissRate(), cold.L2Stats.MissRate())
	}
	// Commit bursts may overshoot the requested warmup boundary by up to
	// CommitWidth−1 instructions.
	if rw.Instructions > 70000 || rw.Instructions < 69996 {
		t.Fatalf("warm run counted %d instructions, want ≈70000", rw.Instructions)
	}
}

func TestWarmupLargerThanTraceClamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInsts = 1 << 30
	tr := mkTrace(2000, 16)
	r := Run(cfg, tr)
	if r.Instructions != 1000 { // clamped to half the trace
		t.Fatalf("instructions = %d, want 1000", r.Instructions)
	}
}

func TestCyclesPositiveAndBounded(t *testing.T) {
	// CPI can never be below 1/CommitWidth or absurdly high on a sane
	// machine with predictable code.
	cfg := DefaultConfig()
	tr := mkTrace(10000, 16)
	r := Run(cfg, tr)
	minCPI := 1.0 / float64(cfg.CommitWidth)
	if r.CPI() < minCPI {
		t.Fatalf("CPI %v below structural floor %v", r.CPI(), minCPI)
	}
}

// Property/fuzz: random legal configurations on random benchmark traces
// always run to completion with finite, positive CPI.
func TestQuickRandomConfigsComplete(t *testing.T) {
	names := trace.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.PipeDepth = 7 + rng.Intn(18)
		cfg.ROBSize = 24 + rng.Intn(105)
		cfg.IQSize = 2 + rng.Intn(cfg.ROBSize)
		cfg.LSQSize = 2 + rng.Intn(cfg.ROBSize)
		cfg.DL1Lat = 1 + rng.Intn(4)
		cfg.L2Lat = 5 + rng.Intn(16)
		sizes := []int{8, 16, 32, 64}
		cfg.IL1.SizeKB = sizes[rng.Intn(4)]
		cfg.DL1.SizeKB = sizes[rng.Intn(4)]
		l2s := []int{256, 512, 1024, 2048, 4096, 8192}
		cfg.L2.SizeKB = l2s[rng.Intn(6)]
		cfg.MSHRs = 1 + rng.Intn(16)
		cfg.WarmupInsts = rng.Intn(6000)
		tr, err := trace.Cached(names[rng.Intn(len(names))], 10000)
		if err != nil {
			return false
		}
		r := Run(cfg, tr)
		return r.Instructions > 0 && r.CPI() > 0.2 && r.CPI() < 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: stall accounting never exceeds total cycles.
func TestQuickStallAccountingBounded(t *testing.T) {
	names := trace.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.ROBSize = 24 + rng.Intn(105)
		cfg.IQSize = 2 + rng.Intn(32)
		cfg.LSQSize = 2 + rng.Intn(32)
		tr, err := trace.Cached(names[rng.Intn(len(names))], 8000)
		if err != nil {
			return false
		}
		r := Run(cfg, tr)
		return r.ROBStallCycles <= r.Cycles &&
			r.IQStallCycles <= r.Cycles &&
			r.LSQStallCycles <= r.Cycles &&
			r.FetchStallCycles <= r.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWiderMachineNeverMuchSlower(t *testing.T) {
	// Issue/fetch/commit width 8 vs 2: more bandwidth must not hurt
	// (allowing a sliver of slack for second-order contention effects).
	for _, name := range []string{"crafty", "equake"} {
		narrow := DefaultConfig()
		narrow.FetchWidth, narrow.IssueWidth, narrow.CommitWidth = 2, 2, 2
		wide := DefaultConfig()
		wide.FetchWidth, wide.IssueWidth, wide.CommitWidth = 8, 8, 8
		tr, _ := trace.Cached(name, 20000)
		rn, rw := Run(narrow, tr), Run(wide, tr)
		if rw.CPI() > rn.CPI()*1.02 {
			t.Fatalf("%s: 8-wide CPI %v worse than 2-wide %v", name, rw.CPI(), rn.CPI())
		}
	}
}

func TestFasterMemoryNeverSlower(t *testing.T) {
	slow := DefaultConfig()
	slow.Mem = mem.Config{TCAS: 120, TRCD: 80, TRP: 80, BusCycles: 16, Banks: 8, RowBytes: 2048, QueueDepth: 16}
	fast := DefaultConfig()
	fast.Mem = mem.Config{TCAS: 30, TRCD: 25, TRP: 25, BusCycles: 4, Banks: 8, RowBytes: 2048, QueueDepth: 16}
	tr, _ := trace.Cached("mcf", 20000)
	rs, rf := Run(slow, tr), Run(fast, tr)
	if rf.CPI() >= rs.CPI() {
		t.Fatalf("fast DRAM CPI %v not better than slow %v", rf.CPI(), rs.CPI())
	}
}
