// Package mem models the main-memory subsystem behind the L2: DRAM
// device timing (banks with open-row policy, tRCD/tCAS/tRP), queuing at
// the memory controller (finite request queue), and contention for the
// shared memory data bus — the three effects §3 of the paper lists as
// explicitly modeled. All times are in CPU cycles.
package mem

// Config fixes the memory subsystem's timing. These are held constant
// across the design space; only the cache/queue parameters of Table 1
// vary in the study.
type Config struct {
	Banks      int // DRAM banks (power of two)
	RowBytes   int // bytes per row ("page") per bank
	TRCD       int // activate → column command, CPU cycles
	TCAS       int // column command → first data
	TRP        int // precharge on a row conflict
	BusCycles  int // data-bus occupancy per cache-line transfer
	QueueDepth int // controller request queue entries
}

// DefaultConfig models a 2006-era DDR2-style part behind a ~2 GHz core:
// ~60 cycles to first data on a row hit, ~110 on a conflict, 8 cycles of
// bus occupancy per 64-byte line.
func DefaultConfig() Config {
	return Config{
		Banks:      8,
		RowBytes:   2048,
		TRCD:       50,
		TCAS:       60,
		TRP:        50,
		BusCycles:  8,
		QueueDepth: 16,
	}
}

// Stats counts memory-system events.
type Stats struct {
	Requests     uint64
	RowHits      uint64
	RowConflicts uint64
	QueueStalls  uint64 // requests that waited for a queue slot
	BusWait      uint64 // total cycles requests waited for the bus
}

// Controller is the memory controller + DRAM + bus timing model. It is
// driven with Access calls carrying the current cycle and returns the
// cycle at which the requested line's data is fully delivered.
type Controller struct {
	cfg      Config
	bankFree []uint64 // earliest cycle each bank can start a new command
	openRow  []uint64
	rowValid []bool
	busFree  uint64
	inflight []uint64 // completion times of queued requests (unsorted)
	Stats    Stats
}

// New builds a controller; zero config fields take defaults.
func New(cfg Config) *Controller {
	d := DefaultConfig()
	if cfg.Banks <= 0 {
		cfg.Banks = d.Banks
	}
	if cfg.RowBytes <= 0 {
		cfg.RowBytes = d.RowBytes
	}
	if cfg.TRCD <= 0 {
		cfg.TRCD = d.TRCD
	}
	if cfg.TCAS <= 0 {
		cfg.TCAS = d.TCAS
	}
	if cfg.TRP <= 0 {
		cfg.TRP = d.TRP
	}
	if cfg.BusCycles <= 0 {
		cfg.BusCycles = d.BusCycles
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = d.QueueDepth
	}
	return &Controller{
		cfg:      cfg,
		bankFree: make([]uint64, cfg.Banks),
		openRow:  make([]uint64, cfg.Banks),
		rowValid: make([]bool, cfg.Banks),
	}
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Access issues a line fetch for addr at cycle now and returns the cycle
// at which the data has been delivered over the bus.
func (c *Controller) Access(now uint64, addr uint64) uint64 {
	c.Stats.Requests++

	// Queue admission: if the request queue is full, the request waits
	// until the earliest in-flight request completes.
	start := now
	if len(c.inflight) >= c.cfg.QueueDepth {
		earliest, ei := c.inflight[0], 0
		for i, t := range c.inflight {
			if t < earliest {
				earliest, ei = t, i
			}
		}
		if earliest > start {
			start = earliest
			c.Stats.QueueStalls++
		}
		c.inflight[ei] = c.inflight[len(c.inflight)-1]
		c.inflight = c.inflight[:len(c.inflight)-1]
	}
	// Drop completed requests from the queue.
	kept := c.inflight[:0]
	for _, t := range c.inflight {
		if t > start {
			kept = append(kept, t)
		}
	}
	c.inflight = kept

	// DRAM bank timing with an open-row policy.
	rowGlobal := addr / uint64(c.cfg.RowBytes)
	bank := int(rowGlobal) & (c.cfg.Banks - 1)
	row := rowGlobal / uint64(c.cfg.Banks)
	t0 := start
	if bf := c.bankFree[bank]; bf > t0 {
		t0 = bf
	}
	var lat uint64
	if c.rowValid[bank] && c.openRow[bank] == row {
		c.Stats.RowHits++
		lat = uint64(c.cfg.TCAS)
	} else {
		c.Stats.RowConflicts++
		lat = uint64(c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS)
		c.openRow[bank] = row
		c.rowValid[bank] = true
	}
	dataReady := t0 + lat
	c.bankFree[bank] = dataReady

	// Bus contention: the line transfer occupies the shared data bus.
	busStart := dataReady
	if c.busFree > busStart {
		c.Stats.BusWait += c.busFree - busStart
		busStart = c.busFree
	}
	complete := busStart + uint64(c.cfg.BusCycles)
	c.busFree = complete

	c.inflight = append(c.inflight, complete)
	return complete
}

// MinLatency returns the unloaded best-case latency (row hit, idle bus).
func (c *Controller) MinLatency() uint64 {
	return uint64(c.cfg.TCAS + c.cfg.BusCycles)
}
