package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowHitFasterThanConflict(t *testing.T) {
	c := New(Config{})
	cold := c.Access(0, 0x1000) - 0 // first touch: row conflict path
	// Same row again, after the bank frees: row hit.
	now := cold + 100
	hit := c.Access(now, 0x1040) - now
	if hit >= cold {
		t.Fatalf("row hit latency %d not faster than conflict %d", hit, cold)
	}
	if hit != c.MinLatency() {
		t.Fatalf("unloaded row hit = %d, want MinLatency %d", hit, c.MinLatency())
	}
}

func TestRowConflictReopens(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	c.Access(0, 0x0)
	// Different row, same bank: rows are RowBytes apart × Banks stride.
	stride := uint64(cfg.RowBytes * cfg.Banks)
	now := uint64(1000)
	lat := c.Access(now, stride) - now
	want := uint64(cfg.TRP + cfg.TRCD + cfg.TCAS + cfg.BusCycles)
	if lat != want {
		t.Fatalf("conflict latency = %d, want %d", lat, want)
	}
	if c.Stats.RowConflicts != 2 { // cold + reopen
		t.Fatalf("row conflicts = %d", c.Stats.RowConflicts)
	}
}

func TestBankParallelism(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	// Two simultaneous requests to different banks overlap their DRAM
	// access; only the bus serializes them.
	t1 := c.Access(0, 0)
	t2 := c.Access(0, uint64(cfg.RowBytes)) // next bank
	if t2-t1 != uint64(cfg.BusCycles) {
		t.Fatalf("bank-parallel completion gap = %d, want bus-only %d", t2-t1, cfg.BusCycles)
	}
}

func TestSameBankSerializes(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	stride := uint64(cfg.RowBytes * cfg.Banks) // same bank, different row
	t1 := c.Access(0, 0)
	t2 := c.Access(0, stride)
	if t2 <= t1+uint64(cfg.BusCycles) {
		t.Fatalf("same-bank different-row requests overlapped: %d then %d", t1, t2)
	}
}

func TestBusContentionAccumulates(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	// Saturate with row hits to one open row: each transfer should be
	// spaced by at least BusCycles.
	c.Access(0, 0)
	var prev uint64
	for i := 1; i < 10; i++ {
		done := c.Access(0, uint64(i*64)) // same row (RowBytes=2048)
		if prev != 0 && done < prev+uint64(cfg.BusCycles) {
			t.Fatalf("bus transfers overlapped: %d after %d", done, prev)
		}
		prev = done
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 2
	c := New(cfg)
	// Issue many requests at cycle 0; with a depth-2 queue, later ones
	// must wait for earlier completions.
	var last uint64
	for i := 0; i < 8; i++ {
		last = c.Access(0, uint64(i)*uint64(cfg.RowBytes)*uint64(cfg.Banks))
	}
	if c.Stats.QueueStalls == 0 {
		t.Fatal("no queue stalls despite saturation")
	}
	deep := New(Config{QueueDepth: 64})
	var lastDeep uint64
	for i := 0; i < 8; i++ {
		lastDeep = deep.Access(0, uint64(i)*uint64(cfg.RowBytes)*uint64(cfg.Banks))
	}
	if last < lastDeep {
		t.Fatalf("shallow queue finished earlier (%d) than deep (%d)", last, lastDeep)
	}
}

func TestMonotoneCompletionAfterIssue(t *testing.T) {
	// Property: completion is always strictly after issue, and at least
	// MinLatency later when the system is idle at issue time.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{})
		now := uint64(0)
		for i := 0; i < 200; i++ {
			now += uint64(rng.Intn(50))
			addr := uint64(rng.Intn(1 << 26))
			done := c.Access(now, addr)
			if done <= now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 5; i++ {
		c.Access(uint64(i*1000), 0x40)
	}
	if c.Stats.Requests != 5 {
		t.Fatalf("requests = %d", c.Stats.Requests)
	}
	if c.Stats.RowHits+c.Stats.RowConflicts != 5 {
		t.Fatalf("hits+conflicts = %d", c.Stats.RowHits+c.Stats.RowConflicts)
	}
	if c.Stats.RowHits != 4 {
		t.Fatalf("row hits = %d, want 4 after cold open", c.Stats.RowHits)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Config{})
	if c.Config() != DefaultConfig() {
		t.Fatalf("zero config did not take defaults: %+v", c.Config())
	}
}
