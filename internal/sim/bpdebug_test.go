package sim

import (
	"fmt"
	"testing"

	"predperf/internal/sim/branch"
	"predperf/internal/trace"
)

// TestBPOracle measures in-order predictor accuracy on the raw branch
// streams; it documents that the tournament predictor reaches realistic
// accuracies on the synthetic workloads.
func TestBPOracle(t *testing.T) {
	for _, name := range trace.Names() {
		tr, _ := trace.Cached(name, 100000)
		p := branch.New(branch.Config{})
		correct, total := 0, 0
		for _, in := range tr {
			if in.Op != trace.Branch {
				continue
			}
			pred, cp := p.PredictDirection(in.PC)
			if pred == in.Taken {
				correct++
			} else {
				p.Restore(in.PC, cp, in.Taken)
			}
			p.Update(in.PC, cp, in.Taken)
			total++
		}
		acc := float64(correct) / float64(total)
		if testing.Verbose() {
			fmt.Printf("%-8s oracle in-order accuracy: %.3f (%d branches)\n", name, acc, total)
		}
		if acc < 0.70 {
			t.Errorf("%s: predictor accuracy %.3f below 0.70", name, acc)
		}
	}
}
