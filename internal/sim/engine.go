package sim

import (
	"container/heap"
	"fmt"

	"predperf/internal/sim/branch"
	"predperf/internal/sim/cache"
	"predperf/internal/sim/mem"
	"predperf/internal/trace"
)

type entryState uint8

const (
	stWaiting entryState = iota // dispatched, operands possibly outstanding
	stIssued                    // executing
	stDone                      // completed, awaiting commit
)

// depRef names a dependent ROB entry; seq validates against reuse after
// a flush.
type depRef struct {
	slot int32
	seq  uint64
}

// robEntry is one reorder-buffer entry.
type robEntry struct {
	seq      uint64
	traceIdx int
	pc       uint64
	addr     uint64
	op       trace.Op
	state    entryState
	notReady int8

	// Branch bookkeeping (fetch-time prediction state).
	bpCP   branch.Checkpoint
	predOK bool
	taken  bool
	target uint64

	dependents []depRef
}

// fqEntry is an instruction in flight through the front end.
type fqEntry struct {
	traceIdx int
	readyAt  uint64 // cycle it reaches dispatch (fetch cycle + pipe depth)
	bpCP     branch.Checkpoint
	predOK   bool
}

// readyItem orders ready instructions oldest-first for issue.
type readyItem struct {
	seq  uint64
	slot int32
}

type readyHeap []readyItem

func (h readyHeap) Len() int            { return len(h) }
func (h readyHeap) Less(i, j int) bool  { return h[i].seq < h[j].seq }
func (h readyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// event is a scheduled completion.
type event struct {
	slot int32
	seq  uint64
}

const wheelBits = 15 // event wheel spans 32k cycles; overflow goes to a map

// inflightFill tracks an outstanding L1D line fill (an MSHR).
type inflightFill struct {
	line uint64
	done uint64
}

// storeRef is an uncommitted store visible to load forwarding.
type storeRef struct {
	seq  uint64
	addr uint64
}

// cpu is the complete microarchitectural state of one run.
type cpu struct {
	cfg Config
	tr  trace.Trace

	now uint64

	// Memory hierarchy.
	il1, dl1, l2 *cache.Cache
	memc         *mem.Controller
	bp           *branch.Predictor
	mshrs        []inflightFill
	rpt          [rptSize]rptEntry // stride-prefetch reference prediction table

	// Front end.
	fetchIdx        int
	fetchStallUntil uint64
	fetchBlocked    bool
	lastFetchLine   uint64
	fq              []fqEntry
	fqCap           int

	// Back end.
	rob      []robEntry
	robHead  int
	robCount int
	iqCount  int
	lsqCount int
	seqGen   uint64
	ready    readyHeap
	stash    []readyItem

	// Unpipelined divider occupancy.
	intDivBusy uint64
	fpDivBusy  uint64

	// Event wheel.
	wheel    [1 << wheelBits][]event
	overflow map[uint64][]event

	// Store queue for forwarding.
	storeQ []storeRef

	committed int
	warmup    int    // commits before statistics start
	warmCycle uint64 // cycle at which warmup completed
	res       Result
}

// Run simulates the trace to completion on the configured machine and
// returns the run statistics.
func Run(cfg Config, tr trace.Trace) Result {
	cfg.sanitize()
	if len(tr) == 0 {
		return Result{}
	}
	c := &cpu{
		cfg:           cfg,
		tr:            tr,
		il1:           cache.New(cfg.IL1),
		dl1:           cache.New(cfg.DL1),
		l2:            cache.New(cfg.L2),
		memc:          mem.New(cfg.Mem),
		bp:            branch.New(cfg.Branch),
		rob:           make([]robEntry, cfg.ROBSize),
		fqCap:         cfg.FetchWidth * (cfg.PipeDepth + 2),
		lastFetchLine: ^uint64(0),
		overflow:      map[uint64][]event{},
		seqGen:        1,
	}
	warm := cfg.WarmupInsts
	if warm >= len(tr) {
		warm = len(tr) / 2
	}
	c.warmup = warm
	c.run()
	// c.warmup now holds the exact commit count at which statistics were
	// reset (commit bursts can overshoot the requested boundary).
	c.res.Instructions = uint64(len(tr) - c.warmup)
	c.res.Cycles = c.now - c.warmCycle
	c.res.IL1Stats = c.il1.Stats
	c.res.DL1Stats = c.dl1.Stats
	c.res.L2Stats = c.l2.Stats
	c.res.BPStats = c.bp.Stats
	c.res.MemStats = c.memc.Stats
	return c.res
}

func (c *cpu) run() {
	lastProgress := uint64(0)
	lastCommitted := 0
	for c.committed < len(c.tr) {
		c.now++
		c.completions()
		c.commit()
		c.issue()
		c.dispatch()
		c.fetch()

		if c.committed != lastCommitted {
			if lastCommitted < c.warmup && c.committed >= c.warmup {
				c.resetStats()
			}
			lastCommitted = c.committed
			lastProgress = c.now
		} else if c.now-lastProgress > 1_000_000 {
			panic(fmt.Sprintf("sim: no commit progress for 1M cycles at cycle %d (committed %d/%d, robCount=%d, fetchIdx=%d, blocked=%v)",
				c.now, c.committed, len(c.tr), c.robCount, c.fetchIdx, c.fetchBlocked))
		}
	}
}

// resetStats clears all statistics at the end of warmup while leaving
// the microarchitectural state (cache contents, predictor tables, DRAM
// rows) warm.
func (c *cpu) resetStats() {
	c.warmup = c.committed // actual boundary, after any commit burst
	c.warmCycle = c.now
	c.res = Result{}
	c.il1.Stats = cache.Stats{}
	c.dl1.Stats = cache.Stats{}
	c.l2.Stats = cache.Stats{}
	c.bp.Stats = branch.Stats{}
	c.memc.Stats = mem.Stats{}
}

// schedule registers a completion event.
func (c *cpu) schedule(at uint64, slot int32, seq uint64) {
	if at <= c.now {
		at = c.now + 1
	}
	if at-c.now < 1<<wheelBits {
		idx := at & ((1 << wheelBits) - 1)
		c.wheel[idx] = append(c.wheel[idx], event{slot, seq})
	} else {
		c.overflow[at] = append(c.overflow[at], event{slot, seq})
	}
}

// completions processes every event due this cycle: instructions finish
// execution, wake their dependents, and branches resolve.
func (c *cpu) completions() {
	idx := c.now & ((1 << wheelBits) - 1)
	evs := c.wheel[idx]
	c.wheel[idx] = nil
	if ov, ok := c.overflow[c.now]; ok {
		evs = append(evs, ov...)
		delete(c.overflow, c.now)
	}
	for _, ev := range evs {
		e := &c.rob[ev.slot]
		if e.seq != ev.seq || e.state != stIssued {
			continue // squashed
		}
		e.state = stDone
		for _, d := range e.dependents {
			de := &c.rob[d.slot]
			if de.seq != d.seq || de.state != stWaiting {
				continue
			}
			de.notReady--
			if de.notReady == 0 {
				heap.Push(&c.ready, readyItem{seq: de.seq, slot: d.slot})
			}
		}
		e.dependents = nil
		if e.op == trace.Branch {
			c.resolveBranch(ev.slot)
		}
	}
}

// resolveBranch trains the predictor and, on a misprediction, flushes the
// wrong path and redirects fetch.
func (c *cpu) resolveBranch(slot int32) {
	e := &c.rob[slot]
	c.bp.Update(e.pc, e.bpCP, e.taken)
	if e.taken {
		c.bp.UpdateTarget(e.pc, e.target)
	}
	if e.predOK {
		return
	}
	c.res.Mispredicts++
	c.bp.RecordMispredict()
	c.bp.Restore(e.pc, e.bpCP, e.taken)
	// Trace-driven fetch stops at a mispredicted branch (wrong-path
	// instructions are not in the trace), so the branch is always the
	// youngest instruction in flight: there is nothing to squash beyond
	// the (empty) front-end queue. Assert the invariant rather than
	// carrying dead squash machinery.
	pos := (int(slot) - c.robHead + len(c.rob)) % len(c.rob)
	if c.robCount != pos+1 || len(c.fq) != 0 {
		panic(fmt.Sprintf("sim: wrong-path state at mispredict resolve: robCount=%d pos=%d fq=%d",
			c.robCount, pos, len(c.fq)))
	}
	c.fetchIdx = e.traceIdx + 1
	c.fetchBlocked = false
	c.fetchStallUntil = c.now + 1
	c.lastFetchLine = ^uint64(0)
}

// commit retires up to CommitWidth completed instructions in order.
// Stores write the data cache at commit time.
func (c *cpu) commit() {
	for budget := c.cfg.CommitWidth; budget > 0 && c.robCount > 0; budget-- {
		e := &c.rob[c.robHead]
		if e.state != stDone {
			return
		}
		if e.op == trace.Store {
			c.storeCommit(e.addr)
			if len(c.storeQ) == 0 || c.storeQ[0].seq != e.seq {
				panic("sim: store queue out of sync with commit order")
			}
			c.storeQ = c.storeQ[1:]
		}
		if e.op.IsMem() {
			c.lsqCount--
		}
		c.res.Committed[int(e.op)]++
		e.seq = 0
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
		c.committed++
	}
}

// storeCommit performs the data-cache write for a retiring store,
// charging any miss and write-back traffic to the L2 and memory system
// without stalling retirement (the write buffer hides the latency; the
// bandwidth contention is what matters).
func (c *cpu) storeCommit(addr uint64) {
	hit, victim, wb := c.dl1.Access(addr, true)
	if wb {
		c.l2Access(c.now, victim, true)
	}
	if !hit {
		c.l2Access(c.now, addr, false)
	}
}

// l2Access performs an L2 lookup at the given cycle and returns the
// cycle at which the requested line is available, going to DRAM on a
// miss. Dirty L2 victims generate write-back traffic to memory.
func (c *cpu) l2Access(at uint64, addr uint64, write bool) uint64 {
	hit, victim, wb := c.l2.Access(addr, write)
	done := at + uint64(c.cfg.L2Lat)
	if !hit {
		done = c.memc.Access(at+uint64(c.cfg.L2Lat), c.l2.LineAddr(addr))
	}
	if wb {
		c.memc.Access(done, victim)
	}
	return done
}

// issue selects up to IssueWidth ready instructions, oldest first,
// subject to functional-unit and MSHR availability.
func (c *cpu) issue() {
	aluLeft := c.cfg.IntALUs
	mulLeft := c.cfg.IntMults
	fpLeft := c.cfg.FPUnits
	memLeft := c.cfg.MemPorts
	c.stash = c.stash[:0]
	budget := c.cfg.IssueWidth
	for budget > 0 && c.ready.Len() > 0 {
		item := heap.Pop(&c.ready).(readyItem)
		e := &c.rob[item.slot]
		if e.seq != item.seq || e.state != stWaiting {
			continue // squashed or stale
		}
		var done uint64
		issued := false
		switch e.op {
		case trace.IntALU:
			if aluLeft > 0 {
				aluLeft--
				done = c.now + latIntALU
				issued = true
			}
		case trace.Branch:
			if aluLeft > 0 {
				aluLeft--
				done = c.now + latBranch
				issued = true
			}
		case trace.IntMul:
			if mulLeft > 0 {
				mulLeft--
				done = c.now + latIntMul
				issued = true
			}
		case trace.IntDiv:
			if mulLeft > 0 && c.intDivBusy <= c.now {
				mulLeft--
				done = c.now + latIntDiv
				c.intDivBusy = done
				issued = true
			}
		case trace.FPALU:
			if fpLeft > 0 {
				fpLeft--
				done = c.now + latFPALU
				issued = true
			}
		case trace.FPMul:
			if fpLeft > 0 {
				fpLeft--
				done = c.now + latFPMul
				issued = true
			}
		case trace.FPDiv:
			if fpLeft > 0 && c.fpDivBusy <= c.now {
				fpLeft--
				done = c.now + latFPDiv
				c.fpDivBusy = done
				issued = true
			}
		case trace.Store:
			if memLeft > 0 {
				memLeft--
				done = c.now + latStore
				issued = true
			}
		case trace.Load:
			if memLeft > 0 {
				var ok bool
				done, ok = c.loadIssue(e)
				if ok {
					memLeft--
					issued = true
				}
			}
		}
		if !issued {
			c.stash = append(c.stash, item)
			continue
		}
		e.state = stIssued
		c.iqCount--
		c.schedule(done, item.slot, item.seq)
		budget--
	}
	for _, it := range c.stash {
		heap.Push(&c.ready, it)
	}
}

// loadIssue runs a load through forwarding, the L1D, the MSHRs, and the
// lower hierarchy. ok is false when the load cannot issue this cycle
// (MSHRs exhausted).
func (c *cpu) loadIssue(e *robEntry) (done uint64, ok bool) {
	// Store-to-load forwarding from the youngest older store to the
	// same address.
	for i := len(c.storeQ) - 1; i >= 0; i-- {
		s := c.storeQ[i]
		if s.seq < e.seq && s.addr == e.addr {
			c.res.LoadForwards++
			return c.now + 1, true
		}
	}
	line := c.dl1.LineAddr(e.addr)
	// Merge with an outstanding fill of the same line: the data is still
	// in flight, so the load waits for it regardless of the tag state.
	active := c.mshrs[:0]
	var merged uint64
	for _, f := range c.mshrs {
		if f.done > c.now {
			active = append(active, f)
			if f.line == line {
				merged = f.done
			}
		}
	}
	c.mshrs = active
	if merged > 0 {
		return merged, true
	}
	// Probe before allocating: the line may only be installed once an
	// MSHR has accepted the miss, otherwise a load retrying after MSHR
	// exhaustion would spuriously hit on its own half-handled miss.
	if c.dl1.Probe(e.addr) {
		c.dl1.Access(e.addr, false) // update LRU and hit statistics
		c.maybePrefetchData(e.pc, e.addr)
		return c.now + uint64(c.cfg.DL1Lat), true
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		return 0, false
	}
	_, victim, wb := c.dl1.Access(e.addr, false) // allocate the line
	if wb {
		c.l2Access(c.now, victim, true)
	}
	fill := c.l2Access(c.now+uint64(c.cfg.DL1Lat), e.addr, false)
	c.mshrs = append(c.mshrs, inflightFill{line: line, done: fill})
	c.maybePrefetchData(e.pc, e.addr)
	return fill, true
}

// dispatch moves decoded instructions from the front-end queue into the
// ROB, issue queue, and LSQ, resolving their data dependencies.
func (c *cpu) dispatch() {
	for budget := c.cfg.FetchWidth; budget > 0; budget-- {
		if len(c.fq) == 0 || c.fq[0].readyAt > c.now {
			return
		}
		if c.robCount == len(c.rob) {
			c.res.ROBStallCycles++
			return
		}
		if c.iqCount == c.cfg.IQSize {
			c.res.IQStallCycles++
			return
		}
		f := c.fq[0]
		in := &c.tr[f.traceIdx]
		if in.Op.IsMem() && c.lsqCount == c.cfg.LSQSize {
			c.res.LSQStallCycles++
			return
		}
		c.fq = c.fq[1:]

		slot := int32((c.robHead + c.robCount) % len(c.rob))
		c.seqGen++
		e := &c.rob[slot]
		*e = robEntry{
			seq:      c.seqGen,
			traceIdx: f.traceIdx,
			pc:       in.PC,
			addr:     in.Addr,
			op:       in.Op,
			state:    stWaiting,
			bpCP:     f.bpCP,
			predOK:   f.predOK,
			taken:    in.Taken,
			target:   in.Target,
		}
		headTraceIdx := f.traceIdx - c.robCount // oldest in-flight trace index
		if c.robCount > 0 {
			headTraceIdx = c.rob[c.robHead].traceIdx
		}
		link := func(dist int32) {
			if dist <= 0 {
				return
			}
			prodIdx := f.traceIdx - int(dist)
			if prodIdx < headTraceIdx {
				return // producer already committed
			}
			pslot := (c.robHead + (prodIdx - headTraceIdx)) % len(c.rob)
			p := &c.rob[pslot]
			if p.state == stDone {
				return
			}
			p.dependents = append(p.dependents, depRef{slot: slot, seq: e.seq})
			e.notReady++
		}
		link(in.Dep1)
		link(in.Dep2)

		c.robCount++
		c.iqCount++
		if in.Op.IsMem() {
			c.lsqCount++
		}
		if in.Op == trace.Store {
			c.storeQ = append(c.storeQ, storeRef{seq: e.seq, addr: e.addr})
		}
		if e.notReady == 0 {
			heap.Push(&c.ready, readyItem{seq: e.seq, slot: slot})
		}
	}
}

// fetch brings up to FetchWidth instructions into the front-end queue,
// modeling I-cache misses, branch prediction, taken-branch fetch breaks,
// and misprediction stalls. Fetched instructions become dispatchable
// PipeDepth cycles later, which is what makes pipeline depth costly on
// flushes.
func (c *cpu) fetch() {
	if c.fetchIdx >= len(c.tr) {
		return
	}
	if c.fetchBlocked || c.now < c.fetchStallUntil {
		c.res.FetchStallCycles++
		return
	}
	for budget := c.cfg.FetchWidth; budget > 0; budget-- {
		if len(c.fq) >= c.fqCap || c.fetchIdx >= len(c.tr) {
			return
		}
		in := &c.tr[c.fetchIdx]
		line := in.PC &^ uint64(c.il1.LineBytes()-1)
		if line != c.lastFetchLine {
			hit, victim, wb := c.il1.Access(in.PC, false)
			c.lastFetchLine = line
			if wb {
				c.l2Access(c.now, victim, true)
			}
			if !hit {
				c.fetchStallUntil = c.l2Access(c.now, in.PC, false)
				c.maybePrefetchNextLine(in.PC)
				return
			}
		}
		f := fqEntry{traceIdx: c.fetchIdx, readyAt: c.now + uint64(c.cfg.PipeDepth)}
		if in.Op == trace.Branch {
			predTaken, cp := c.bp.PredictDirection(in.PC)
			f.bpCP = cp
			f.predOK = predTaken == in.Taken
			if in.Taken && f.predOK {
				tgt, ok := c.bp.PredictTarget(in.PC)
				if !ok || tgt != in.Target {
					f.predOK = false
				}
			}
			c.fq = append(c.fq, f)
			c.fetchIdx++
			if !f.predOK {
				c.fetchBlocked = true
				return
			}
			if in.Taken {
				return // redirect: taken branches end the fetch group
			}
			continue
		}
		c.fq = append(c.fq, f)
		c.fetchIdx++
	}
}
