package design

import "fmt"

// Parameter names of the paper's 9-dimensional design space (Table 1).
const (
	PipeDepth = "pipe_depth"
	ROBSize   = "ROB_size"
	IQSize    = "IQ_size"  // fraction of ROB_size
	LSQSize   = "LSQ_size" // fraction of ROB_size
	L2Size    = "L2_size"  // KB
	L2Lat     = "L2_lat"
	IL1Size   = "il1_size" // KB
	DL1Size   = "dl1_size" // KB
	DL1Lat    = "dl1_lat"
)

// PaperSpace returns the modeling design space of Table 1. IQ_size and
// LSQ_size are expressed as fractions of ROB_size, as in the paper; the
// fraction itself is the modeled parameter.
func PaperSpace() *Space {
	return &Space{Params: []Param{
		{Name: PipeDepth, Low: 24, High: 7, Levels: 18, Transform: Linear, Integer: true},
		{Name: ROBSize, Low: 24, High: 128, Levels: SampleSizeLevels, Transform: Linear, Integer: true},
		{Name: IQSize, Low: 0.25, High: 0.75, Levels: SampleSizeLevels, Transform: Linear},
		{Name: LSQSize, Low: 0.25, High: 0.75, Levels: SampleSizeLevels, Transform: Linear},
		{Name: L2Size, Low: 256, High: 8192, Levels: 6, Transform: Log, Integer: true},
		{Name: L2Lat, Low: 20, High: 5, Levels: 16, Transform: Linear, Integer: true},
		{Name: IL1Size, Low: 8, High: 64, Levels: 4, Transform: Log, Integer: true},
		{Name: DL1Size, Low: 8, High: 64, Levels: 4, Transform: Log, Integer: true},
		{Name: DL1Lat, Low: 4, High: 1, Levels: 4, Transform: Linear, Integer: true},
	}}
}

// TestSpace returns the restricted space of Table 2 from which the
// independent random test points are drawn.
func TestSpace() *Space {
	return &Space{Params: []Param{
		{Name: PipeDepth, Low: 22, High: 9, Levels: 14, Transform: Linear, Integer: true},
		{Name: ROBSize, Low: 37, High: 115, Levels: SampleSizeLevels, Transform: Linear, Integer: true},
		{Name: IQSize, Low: 0.31, High: 0.69, Levels: SampleSizeLevels, Transform: Linear},
		{Name: LSQSize, Low: 0.31, High: 0.69, Levels: SampleSizeLevels, Transform: Linear},
		{Name: L2Size, Low: 256, High: 8192, Levels: 6, Transform: Log, Integer: true},
		{Name: L2Lat, Low: 18, High: 7, Levels: 12, Transform: Linear, Integer: true},
		{Name: IL1Size, Low: 8, High: 64, Levels: 4, Transform: Log, Integer: true},
		{Name: DL1Size, Low: 8, High: 64, Levels: 4, Transform: Log, Integer: true},
		{Name: DL1Lat, Low: 4, High: 1, Levels: 4, Transform: Linear, Integer: true},
	}}
}

// RequiredParams lists the parameter names Decode and Encode require: a
// space must carry all nine paper parameters to map between normalized
// points and concrete configurations.
func RequiredParams() []string {
	return []string{PipeDepth, ROBSize, IQSize, LSQSize, L2Size, L2Lat, IL1Size, DL1Size, DL1Lat}
}

// CheckDecodable reports whether the space can Decode and Encode,
// naming the first missing paper parameter otherwise. Decode and Encode
// panic on such spaces; callers that accept arbitrary spaces should
// check first and return the error.
func (s *Space) CheckDecodable() error {
	for _, name := range RequiredParams() {
		if s.Index(name) < 0 {
			return fmt.Errorf("design: space is missing parameter %q", name)
		}
	}
	return nil
}

// Config is a concrete processor configuration in natural units, the
// result of decoding a normalized Point. IQ and LSQ sizes have been
// resolved from their ROB fractions into entry counts.
type Config struct {
	PipeDepth int // front-end pipeline depth, stages
	ROBSize   int // reorder buffer entries
	IQSize    int // issue queue entries
	LSQSize   int // load/store queue entries
	L2SizeKB  int // unified L2 capacity, KB
	L2Lat     int // L2 hit latency, cycles
	IL1SizeKB int // L1 instruction cache capacity, KB
	DL1SizeKB int // L1 data cache capacity, KB
	DL1Lat    int // L1 data cache hit latency, cycles
}

// Key returns a canonical string identity for memoizing simulations.
func (c Config) Key() string {
	return fmt.Sprintf("pd%d.rob%d.iq%d.lsq%d.l2s%d.l2l%d.il1%d.dl1%d.d1l%d",
		c.PipeDepth, c.ROBSize, c.IQSize, c.LSQSize, c.L2SizeKB, c.L2Lat, c.IL1SizeKB, c.DL1SizeKB, c.DL1Lat)
}

func (c Config) String() string {
	return fmt.Sprintf("depth=%d ROB=%d IQ=%d LSQ=%d L2=%dKB/%dcyc IL1=%dKB DL1=%dKB/%dcyc",
		c.PipeDepth, c.ROBSize, c.IQSize, c.LSQSize, c.L2SizeKB, c.L2Lat, c.IL1SizeKB, c.DL1SizeKB, c.DL1Lat)
}

// Decode turns a normalized point from this space into a concrete
// Config, quantizing each coordinate to the parameter's levels (with
// sample-size-dependent level counts resolved against sampleSize) and
// deriving IQ/LSQ entry counts from their ROB fractions.
//
// Decode panics if the space does not contain the nine paper parameters;
// it is specific to the superscalar design space studied here.
func (s *Space) Decode(pt Point, sampleSize int) Config {
	if len(pt) != s.N() {
		panic(fmt.Sprintf("design: point has %d dims, space has %d", len(pt), s.N()))
	}
	val := func(name string) float64 {
		i := s.Index(name)
		if i < 0 {
			panic("design: space is missing parameter " + name)
		}
		return s.Params[i].Value(pt[i], sampleSize)
	}
	rob := int(val(ROBSize))
	iq := int(val(IQSize)*float64(rob) + 0.5)
	lsq := int(val(LSQSize)*float64(rob) + 0.5)
	if iq < 2 {
		iq = 2
	}
	if lsq < 2 {
		lsq = 2
	}
	return Config{
		PipeDepth: int(val(PipeDepth)),
		ROBSize:   rob,
		IQSize:    iq,
		LSQSize:   lsq,
		L2SizeKB:  snapPow2(int(val(L2Size))),
		L2Lat:     int(val(L2Lat)),
		IL1SizeKB: snapPow2(int(val(IL1Size))),
		DL1SizeKB: snapPow2(int(val(DL1Size))),
		DL1Lat:    int(val(DL1Lat)),
	}
}

// snapPow2 rounds a positive value to the nearest power of two, so that
// log-spaced cache sizes land on implementable capacities.
func snapPow2(v int) int {
	if v <= 1 {
		return 1
	}
	p := 1
	for p*2 <= v {
		p *= 2
	}
	// p <= v < 2p: pick the geometrically closer endpoint.
	if float64(v)*float64(v) >= float64(p)*float64(2*p) {
		return 2 * p
	}
	return p
}

// Encode normalizes a concrete configuration into this space's unit-cube
// coordinates. It is the inverse of Decode up to quantization, and is
// the canonical model input: models are trained and queried on
// Encode(config) so that the coordinates always describe the machine
// that was actually simulated.
func (s *Space) Encode(c Config) Point {
	pt := make(Point, s.N())
	set := func(name string, v float64) {
		i := s.Index(name)
		if i < 0 {
			panic("design: space is missing parameter " + name)
		}
		pt[i] = s.Params[i].Normalize(v)
	}
	set(PipeDepth, float64(c.PipeDepth))
	set(ROBSize, float64(c.ROBSize))
	set(IQSize, float64(c.IQSize)/float64(c.ROBSize))
	set(LSQSize, float64(c.LSQSize)/float64(c.ROBSize))
	set(L2Size, float64(c.L2SizeKB))
	set(L2Lat, float64(c.L2Lat))
	set(IL1Size, float64(c.IL1SizeKB))
	set(DL1Size, float64(c.DL1SizeKB))
	set(DL1Lat, float64(c.DL1Lat))
	return pt
}

// Embed maps a point expressed in this (sub)space into the coordinates
// of the enclosing space enc: each coordinate is decoded to natural
// units here and re-normalized against enc's ranges. It is used to
// express Table 2 test points in the Table 1 modeling space.
func (s *Space) Embed(pt Point, enc *Space) Point {
	out := make(Point, enc.N())
	for i, p := range s.Params {
		j := enc.Index(p.Name)
		if j < 0 {
			panic("design: enclosing space is missing parameter " + p.Name)
		}
		out[j] = enc.Params[j].Normalize(p.Natural(pt[i]))
	}
	return out
}
