// Package design specifies microarchitectural design spaces: the set of
// parameters under study, their ranges, their discrete level counts, and
// the input transformation (linear or logarithmic) applied before
// modeling, exactly as in Table 1 of the paper.
//
// A design point has two representations:
//
//   - a normalized Point in the unit hypercube [0,1]^n used by sampling
//     and by the regression models (0 maps to a parameter's Low setting,
//     1 to its High setting, with log-scaled parameters interpolated
//     geometrically), and
//   - a concrete Config of natural parameter values handed to the
//     simulator, produced by Decode after quantizing each coordinate to
//     the parameter's discrete levels.
//
// Note that, as in the paper's Table 1, the Low setting of a parameter is
// its performance-hostile end and may be numerically larger than the High
// setting (e.g. pipeline depth runs 24 → 7, L2 latency 20 → 5).
package design

import (
	"fmt"
	"math"
)

// Transform selects the input transformation applied to a parameter
// before modeling (last column of Table 1).
type Transform int

const (
	// Linear interpolates natural values linearly between Low and High.
	Linear Transform = iota
	// Log interpolates geometrically, for parameters like cache sizes
	// whose levels are spaced by powers of two.
	Log
)

func (t Transform) String() string {
	if t == Log {
		return "log"
	}
	return "linear"
}

// SampleSizeLevels marks a parameter whose number of levels tracks the
// sample size ("S" entries in Table 1).
const SampleSizeLevels = 0

// Param describes one microarchitectural parameter.
type Param struct {
	Name string
	// Low and High are the natural-unit endpoints of the range. Low is
	// the performance-hostile end; it may exceed High numerically.
	Low, High float64
	// Levels is the number of discrete settings between Low and High
	// inclusive, or SampleSizeLevels when the level count follows the
	// sample size.
	Levels int
	// Transform is the modeling-space transformation.
	Transform Transform
	// Integer forces decoded natural values to whole numbers.
	Integer bool
}

// Space is an ordered set of parameters.
type Space struct {
	Params []Param
}

// N returns the dimensionality of the space.
func (s *Space) N() int { return len(s.Params) }

// Index returns the position of the named parameter, or -1.
func (s *Space) Index(name string) int {
	for i, p := range s.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Point is a normalized design point in [0,1]^n.
type Point []float64

// Clamp01 limits v to the unit interval.
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Natural maps a normalized coordinate t ∈ [0,1] to the parameter's
// natural units without quantization.
func (p *Param) Natural(t float64) float64 {
	t = Clamp01(t)
	switch p.Transform {
	case Log:
		return p.Low * math.Pow(p.High/p.Low, t)
	default:
		return p.Low + t*(p.High-p.Low)
	}
}

// Normalize maps a natural value back to [0,1]. It is the inverse of
// natural for in-range values.
func (p *Param) Normalize(v float64) float64 {
	switch p.Transform {
	case Log:
		return Clamp01(math.Log(v/p.Low) / math.Log(p.High/p.Low))
	default:
		return Clamp01((v - p.Low) / (p.High - p.Low))
	}
}

// LevelCount resolves the parameter's level count for a given sample
// size: fixed-level parameters return their own count, sample-size-
// dependent parameters return sampleSize.
func (p *Param) LevelCount(sampleSize int) int {
	if p.Levels == SampleSizeLevels {
		if sampleSize < 2 {
			return 2
		}
		return sampleSize
	}
	return p.Levels
}

// Quantize snaps a normalized coordinate to the nearest of the
// parameter's levels (for a given sample size) and returns the snapped
// normalized coordinate.
func (p *Param) Quantize(t float64, sampleSize int) float64 {
	L := p.LevelCount(sampleSize)
	if L <= 1 {
		return 0.5
	}
	t = Clamp01(t)
	k := math.Round(t * float64(L-1))
	return k / float64(L-1)
}

// Value decodes a normalized coordinate into natural units, quantizing
// to the parameter's levels and rounding integer parameters.
func (p *Param) Value(t float64, sampleSize int) float64 {
	v := p.Natural(p.Quantize(t, sampleSize))
	if p.Integer {
		v = math.Round(v)
	}
	return v
}

// Values lists all natural-unit levels of the parameter for a given
// sample size, ordered from the Low setting to the High setting.
func (p *Param) Values(sampleSize int) []float64 {
	L := p.LevelCount(sampleSize)
	out := make([]float64, L)
	for k := 0; k < L; k++ {
		t := 0.5
		if L > 1 {
			t = float64(k) / float64(L-1)
		}
		v := p.Natural(t)
		if p.Integer {
			v = math.Round(v)
		}
		out[k] = v
	}
	return out
}

func (s *Space) String() string {
	out := ""
	for _, p := range s.Params {
		lv := "S"
		if p.Levels != SampleSizeLevels {
			lv = fmt.Sprintf("%d", p.Levels)
		}
		out += fmt.Sprintf("%-12s %12g %12g  levels=%-3s %s\n", p.Name, p.Low, p.High, lv, p.Transform)
	}
	return out
}
