package design

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperSpaceShape(t *testing.T) {
	s := PaperSpace()
	if s.N() != 9 {
		t.Fatalf("paper space has %d params, want 9", s.N())
	}
	for _, name := range []string{PipeDepth, ROBSize, IQSize, LSQSize, L2Size, L2Lat, IL1Size, DL1Size, DL1Lat} {
		if s.Index(name) < 0 {
			t.Fatalf("missing parameter %s", name)
		}
	}
}

func TestParamEndpoints(t *testing.T) {
	s := PaperSpace()
	// Coordinate 0 is the Low (hostile) setting, 1 the High setting.
	pd := s.Params[s.Index(PipeDepth)]
	if got := pd.Value(0, 100); got != 24 {
		t.Fatalf("pipe_depth at t=0 = %v, want 24", got)
	}
	if got := pd.Value(1, 100); got != 7 {
		t.Fatalf("pipe_depth at t=1 = %v, want 7", got)
	}
	l2 := s.Params[s.Index(L2Size)]
	if got := l2.Value(0, 100); got != 256 {
		t.Fatalf("L2 at t=0 = %v, want 256", got)
	}
	if got := l2.Value(1, 100); got != 8192 {
		t.Fatalf("L2 at t=1 = %v, want 8192", got)
	}
}

func TestLogLevelsArePowersOfTwo(t *testing.T) {
	s := PaperSpace()
	l2 := s.Params[s.Index(L2Size)]
	vals := l2.Values(100)
	want := []float64{256, 512, 1024, 2048, 4096, 8192}
	if len(vals) != len(want) {
		t.Fatalf("L2 levels = %v", vals)
	}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 0.5 {
			t.Fatalf("L2 level %d = %v, want %v", i, vals[i], want[i])
		}
	}
	il1 := s.Params[s.Index(IL1Size)]
	got := il1.Values(100)
	wantIL1 := []float64{8, 16, 32, 64}
	for i := range wantIL1 {
		if math.Abs(got[i]-wantIL1[i]) > 0.5 {
			t.Fatalf("il1 levels = %v, want %v", got, wantIL1)
		}
	}
}

func TestSampleSizeLevels(t *testing.T) {
	s := PaperSpace()
	rob := s.Params[s.Index(ROBSize)]
	if rob.LevelCount(90) != 90 {
		t.Fatalf("ROB level count at sample 90 = %d", rob.LevelCount(90))
	}
	if rob.LevelCount(0) != 2 {
		t.Fatalf("ROB level count floor = %d", rob.LevelCount(0))
	}
	fixed := s.Params[s.Index(DL1Lat)]
	if fixed.LevelCount(90) != 4 {
		t.Fatalf("dl1_lat levels = %d, want 4", fixed.LevelCount(90))
	}
}

func TestQuantizeSnapsToLevels(t *testing.T) {
	p := Param{Name: "x", Low: 0, High: 3, Levels: 4, Transform: Linear}
	// 4 levels → normalized levels {0, 1/3, 2/3, 1}.
	cases := map[float64]float64{0.0: 0, 0.1: 0, 0.2: 1. / 3, 0.49: 1. / 3, 0.51: 2. / 3, 0.99: 1, 1.0: 1}
	for in, want := range cases {
		if got := p.Quantize(in, 50); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Quantize(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestDecodeDerivesIQLSQFromROB(t *testing.T) {
	s := PaperSpace()
	pt := make(Point, s.N())
	for i := range pt {
		pt[i] = 0.5
	}
	pt[s.Index(ROBSize)] = 1.0 // 128 entries
	pt[s.Index(IQSize)] = 0.0  // 0.25 fraction
	pt[s.Index(LSQSize)] = 1.0 // 0.75 fraction
	cfg := s.Decode(pt, 100)
	if cfg.ROBSize != 128 {
		t.Fatalf("ROB = %d, want 128", cfg.ROBSize)
	}
	if cfg.IQSize != 32 {
		t.Fatalf("IQ = %d, want 32 (0.25*128)", cfg.IQSize)
	}
	if cfg.LSQSize != 96 {
		t.Fatalf("LSQ = %d, want 96 (0.75*128)", cfg.LSQSize)
	}
}

func TestDecodeBoundsAndIntegrality(t *testing.T) {
	s := PaperSpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := make(Point, s.N())
		for i := range pt {
			pt[i] = rng.Float64()
		}
		cfg := s.Decode(pt, 90)
		if cfg.PipeDepth < 7 || cfg.PipeDepth > 24 {
			return false
		}
		if cfg.ROBSize < 24 || cfg.ROBSize > 128 {
			return false
		}
		if cfg.IQSize < 2 || cfg.IQSize > cfg.ROBSize {
			return false
		}
		if cfg.LSQSize < 2 || cfg.LSQSize > cfg.ROBSize {
			return false
		}
		switch cfg.L2SizeKB {
		case 256, 512, 1024, 2048, 4096, 8192:
		default:
			return false
		}
		switch cfg.IL1SizeKB {
		case 8, 16, 32, 64:
		default:
			return false
		}
		switch cfg.DL1SizeKB {
		case 8, 16, 32, 64:
		default:
			return false
		}
		if cfg.L2Lat < 5 || cfg.L2Lat > 20 {
			return false
		}
		if cfg.DL1Lat < 1 || cfg.DL1Lat > 4 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	s := PaperSpace()
	for _, p := range s.Params {
		for _, tt := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := p.Natural(tt)
			back := p.Normalize(v)
			if math.Abs(back-tt) > 1e-9 {
				t.Fatalf("%s: Normalize(natural(%v)) = %v", p.Name, tt, back)
			}
		}
	}
}

func TestEmbedTestSpaceIntoPaperSpace(t *testing.T) {
	sub, enc := TestSpace(), PaperSpace()
	// The center of the restricted space must land strictly inside [0,1]
	// in the full space, and endpoints must stay in range.
	pt := make(Point, sub.N())
	for i := range pt {
		pt[i] = 0.5
	}
	em := sub.Embed(pt, enc)
	for i, v := range em {
		if v < 0 || v > 1 {
			t.Fatalf("embedded coord %d = %v out of range", i, v)
		}
	}
	// pipe_depth: sub range 22..9 inside 24..7 → embedded endpoints interior.
	pt0 := make(Point, sub.N())
	em0 := sub.Embed(pt0, enc)
	i := enc.Index(PipeDepth)
	if em0[i] <= 0 || em0[i] >= 1 {
		t.Fatalf("embedded pipe_depth low endpoint = %v, want interior", em0[i])
	}
}

func TestSnapPow2(t *testing.T) {
	// Ties break to the geometrically closer power (log scale): 3 → 4
	// since log2(3) = 1.585 is nearer 2 than 1.
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 4, 6: 8, 255: 256, 256: 256, 300: 256, 400: 512, 8192: 8192}
	for in, want := range cases {
		if got := snapPow2(in); got != want {
			t.Fatalf("snapPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	s := PaperSpace()
	a := make(Point, s.N())
	b := make(Point, s.N())
	for i := range a {
		a[i], b[i] = 0.2, 0.8
	}
	ka := s.Decode(a, 100).Key()
	kb := s.Decode(b, 100).Key()
	if ka == kb {
		t.Fatal("distinct configs share a key")
	}
	if ka != s.Decode(a, 100).Key() {
		t.Fatal("key not deterministic")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := PaperSpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := make(Point, s.N())
		for i := range pt {
			pt[i] = rng.Float64()
		}
		cfg := s.Decode(pt, 90)
		// Encoding the decoded config and decoding again must be a fixed
		// point: the config describes itself.
		cfg2 := s.Decode(s.Encode(cfg), 90)
		return cfg2 == cfg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRenders(t *testing.T) {
	s := PaperSpace()
	if out := s.String(); len(out) == 0 || s.Params[0].Transform.String() != "linear" {
		t.Fatal("space rendering broken")
	}
	if Log.String() != "log" {
		t.Fatal("transform string")
	}
	cfg := s.Decode(make(Point, s.N()), 50)
	if len(cfg.String()) == 0 || len(cfg.Key()) == 0 {
		t.Fatal("config rendering broken")
	}
}

func TestIndexMissing(t *testing.T) {
	s := PaperSpace()
	if s.Index("bogus") != -1 {
		t.Fatal("Index of missing parameter")
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-1) != 0 || Clamp01(2) != 1 || Clamp01(0.5) != 0.5 {
		t.Fatal("Clamp01 wrong")
	}
}
