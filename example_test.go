package predperf_test

import (
	"fmt"

	"predperf"
)

// Example demonstrates the paper's procedure end to end on a tiny
// budget: build a model from simulations at latin-hypercube-selected
// design points, then predict an unexplored configuration.
func Example() {
	ev, err := predperf.NewSimEvaluator("mcf", 10_000)
	if err != nil {
		panic(err)
	}
	model, err := predperf.BuildModel(ev, 20, predperf.Options{LHSCandidates: 8})
	if err != nil {
		panic(err)
	}
	cpi := model.PredictConfig(predperf.Config{
		PipeDepth: 12, ROBSize: 96, IQSize: 48, LSQSize: 48,
		L2SizeKB: 2048, L2Lat: 10, IL1SizeKB: 32, DL1SizeKB: 32, DL1Lat: 2,
	})
	fmt.Println(cpi > 0 && ev.Simulations() == 20)
	// Output: true
}

// ExampleMinimize shows model-guided design-space search with
// simulator verification of the shortlist.
func ExampleMinimize() {
	ev, err := predperf.NewSimEvaluator("twolf", 10_000)
	if err != nil {
		panic(err)
	}
	model, err := predperf.BuildModel(ev, 20, predperf.Options{LHSCandidates: 8})
	if err != nil {
		panic(err)
	}
	res, err := predperf.Minimize(model, ev, predperf.SearchOptions{
		GridLevels: 2,
		Shortlist:  2,
		Constraint: func(c predperf.Config) bool { return c.L2SizeKB <= 4096 },
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verified, res.Best.L2SizeKB <= 4096)
	// Output: 2 true
}
