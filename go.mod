module predperf

go 1.22
